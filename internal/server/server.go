// Package server is progressd's HTTP query service: asynchronous query
// submission backed by a bounded admission-control worker pool, live
// progress streaming over Server-Sent Events, cancellation that unwinds
// the executor at its safe points, and the engine's Prometheus registry
// mounted at /metrics with server-level instruments alongside.
//
// Surface:
//
//	POST   /queries               submit {sql, name?, keep_rows?, pace_ms?, deadline_ms?} → 202 {id, state, queue_position} | 429 {reason, retry_after_seconds?}
//	GET    /queries               list all queries
//	GET    /queries/{id}          lifecycle snapshot (state, latest progress, timings)
//	GET    /queries/{id}/progress SSE stream: every indicator refresh as JSON, replay included
//	GET    /queries/{id}/result   completed result rows
//	DELETE /queries/{id}          cancel (queued: immediate; running: at next executor safe point)
//	GET    /metrics               Prometheus text exposition (engine + server instruments)
//	GET    /healthz               liveness, queue summary, remaining-work budget, per-shard breaker health
//	POST   /admin/drain           graceful drain: stop admission, wait for in-flight work, then cancel stragglers
//
// Concurrency model: the engine executes queries concurrently — each
// query runs on its own worker clock that merges into the engine's
// shared time authority — so up to Config.Workers executions proceed
// in parallel, bounded by an engine semaphore sized to the worker
// pool; the admission queue bounds how much more may be queued
// (admission control), and everything else — snapshots, SSE fan-out,
// cancellation, /metrics — is fully concurrent.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"progressdb"
	"progressdb/client"
	"progressdb/internal/exec"
	"progressdb/internal/fleet"
	"progressdb/internal/obs"
	"progressdb/internal/obs/tsdb"
	"progressdb/internal/server/dashboard"
	"progressdb/internal/server/history"
)

// Config configures a Server.
type Config struct {
	// Workers is the number of queries that may execute on the engine
	// simultaneously: it sizes both the admission worker pool and the
	// engine semaphore, so -workers N means N truly parallel
	// executions on the shared DB. Default 1 (serial, fully
	// deterministic ordering).
	Workers int
	// QueueDepth bounds the admission queue; a submit that finds it
	// full is rejected with 429. Default 8.
	QueueDepth int
	// QueryTimeout, when > 0, bounds each query's execution by a
	// wall-clock deadline. A query that exceeds it unwinds at the
	// executor's next safe point and finishes in state "failed" with a
	// timeout error (user cancellations stay "canceled"); the
	// server_queries_timedout_total counter tracks occurrences.
	QueryTimeout time.Duration
	// SampleInterval is the timeseries sampler's cadence: every
	// interval, one point per registered instrument is recorded into
	// the ring-buffer store behind /api/timeseries. 0 means the 1 s
	// default; negative disables the wall-clock sampler entirely
	// (tests then drive sampleOnce with virtual timestamps).
	SampleInterval time.Duration
	// TimeseriesPoints is the per-series ring capacity (default 720 —
	// 12 minutes of history at the default cadence).
	TimeseriesPoints int
	// HistoryDepth bounds the completed-query profile store behind
	// /api/history (default 256; oldest-terminal profiles are evicted
	// first).
	HistoryDepth int
	// KeepAlive is the idle interval after which an SSE progress
	// stream emits a `: ping` comment so proxies and EventSource
	// clients don't drop long-quiet connections. 0 means the 15 s
	// default; negative disables pings.
	KeepAlive time.Duration
	// MaxInflightU, when > 0, is the admission controller's in-flight
	// remaining-work budget in U: a submit whose optimizer-estimated
	// cost would push the sum of (est_total_u − done_u) across admitted
	// queries past this is shed with 429 + Retry-After instead of
	// queued. 0 disables cost-based shedding (queue-depth shedding
	// still applies).
	MaxInflightU float64
	// DrainTimeout is how long Drain (SIGTERM, POST /admin/drain) lets
	// in-flight queries finish before canceling the stragglers at their
	// next safe point. Default 10 s.
	DrainTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = time.Second
	}
	if c.TimeseriesPoints <= 0 {
		c.TimeseriesPoints = 720
	}
	if c.HistoryDepth <= 0 {
		c.HistoryDepth = 256
	}
	if c.KeepAlive == 0 {
		c.KeepAlive = 15 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// metrics are the server-level instruments. They live in the engine's
// registry when Config.Metrics is on (one unified /metrics page) and in
// a private registry otherwise.
type metrics struct {
	reg    *obs.Registry
	shared bool

	admitted  *obs.Counter
	rejected  *obs.Counter
	canceled  *obs.Counter
	failed    *obs.Counter
	completed *obs.Counter
	timedout  *obs.Counter
	panicked  *obs.Counter
	events    *obs.Counter
	profiles  *obs.Counter
	samples   *obs.Counter
	pings     *obs.Counter

	queueDepth *obs.Gauge
	running    *obs.Gauge
	sseSubs    *obs.Gauge
	retained   *obs.Gauge

	// Admission-control & drain instruments.
	shedByReason map[string]*obs.Counter // server_shed_total{reason=...}
	inflightU    *obs.Gauge
	inflightQ    *obs.Gauge
	drainRate    *obs.Gauge
	drains       *obs.Counter
	drainForced  *obs.Counter
	drainingG    *obs.Gauge

	wall *obs.Histogram
}

func newMetrics(reg *obs.Registry) metrics {
	m := metrics{reg: reg, shared: reg != nil}
	if m.reg == nil {
		m.reg = obs.NewRegistry()
	}
	m.admitted = m.reg.Counter("server_queries_admitted_total", "queries accepted into the admission queue")
	m.rejected = m.reg.Counter("server_queries_rejected_total", "queries rejected with 429 (queue full)")
	m.canceled = m.reg.Counter("server_queries_canceled_total", "queries canceled before or during execution")
	m.failed = m.reg.Counter("server_queries_failed_total", "queries that ended in error")
	m.completed = m.reg.Counter("server_queries_completed_total", "queries that ran to completion")
	m.timedout = m.reg.Counter("server_queries_timedout_total", "queries that exceeded the per-query deadline")
	m.panicked = m.reg.Counter("server_queries_panicked_total", "queries that ended in a recovered panic (internal error)")
	m.events = m.reg.Counter("server_progress_events_total", "progress events published to subscribers")
	m.profiles = m.reg.Counter("server_history_profiles_total", "terminal-query profiles captured into the history store")
	m.samples = m.reg.Counter("server_timeseries_samples_total", "sampler passes recorded into the timeseries store")
	m.pings = m.reg.Counter("server_sse_keepalives_total", "keep-alive comments written on idle progress streams")
	m.shedByReason = map[string]*obs.Counter{
		client.ShedQueueFull: m.reg.LabeledCounter("server_shed_total", "reason", client.ShedQueueFull, "submits shed because the admission queue was full"),
		client.ShedBudget:    m.reg.LabeledCounter("server_shed_total", "reason", client.ShedBudget, "submits shed because the in-flight remaining-work budget was exhausted"),
		client.ShedDeadline:  m.reg.LabeledCounter("server_shed_total", "reason", client.ShedDeadline, "submits shed because the estimated completion exceeded deadline_ms"),
		client.ShedDraining:  m.reg.LabeledCounter("server_shed_total", "reason", client.ShedDraining, "submits shed because the server was draining"),
	}
	m.inflightU = m.reg.Gauge("server_inflight_u", "remaining-work estimate across admitted queries, in U")
	m.inflightQ = m.reg.Gauge("server_inflight_queries", "admitted queries not yet terminal")
	m.drainRate = m.reg.Gauge("server_u_per_wall_second", "EWMA of the observed drain rate (U per wall-clock second)")
	m.drains = m.reg.Counter("server_drains_total", "graceful drains initiated (SIGTERM or /admin/drain)")
	m.drainForced = m.reg.Counter("server_drain_forced_cancels_total", "queries canceled because the drain deadline expired")
	m.drainingG = m.reg.Gauge("server_draining", "1 while the server refuses new admissions for shutdown")
	m.queueDepth = m.reg.Gauge("server_queue_depth", "queries waiting in the admission queue")
	m.running = m.reg.Gauge("server_queries_running", "queries currently executing")
	m.sseSubs = m.reg.Gauge("server_sse_subscribers", "open progress streams")
	m.retained = m.reg.Gauge("server_history_retained", "profiles currently held by the history store")
	m.wall = m.reg.Histogram("server_query_wall_seconds",
		"real (wall-clock) execution time per query",
		[]float64{0.001, 0.005, 0.02, 0.1, 0.5, 2, 10, 60})
	return m
}

// Server is one progressd instance wrapping an execution engine —
// a single progressdb.DB or a sharded fleet.
type Server struct {
	eng Engine
	cfg Config
	reg *registry
	met metrics

	ts   *tsdb.Store
	hist *history.Store
	// lastSample holds the float64 bits of the most recent sample
	// timestamp — the /api/timeseries notion of "now", which follows
	// whichever clock feeds the sampler (wall in the daemon, virtual in
	// tests).
	lastSample atomic.Uint64

	queue  chan *job
	engine chan struct{} // capacity-Workers semaphore bounding parallel executions
	quit   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	adm      *admission  // in-flight remaining-work ledger
	draining atomic.Bool // set by Drain; submits shed with reason "draining"

	mu    sync.Mutex
	nextQ int

	mux *http.ServeMux
}

// New creates a server over a single-engine db and starts its worker
// pool. The engine must already hold its tables (load and Analyze before
// serving). Call Close to stop the workers.
func New(db *progressdb.DB, cfg Config) *Server {
	return NewEngine(dbEngine{db: db}, cfg)
}

// NewFleet creates a server fronting a sharded fleet: queries fan out
// across the shards, progress events carry the per-shard breakdown, and
// /metrics serves the coordinator's fleet_* instruments.
func NewFleet(f *fleet.Fleet, cfg Config) *Server {
	return NewEngine(fleetEngine{f: f}, cfg)
}

// NewEngine creates a server over any Engine and starts its worker pool.
func NewEngine(eng Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		eng:    eng,
		cfg:    cfg,
		reg:    newRegistry(),
		met:    newMetrics(eng.Registry()),
		ts:     tsdb.New(cfg.TimeseriesPoints),
		hist:   history.New(cfg.HistoryDepth),
		queue:  make(chan *job, cfg.QueueDepth),
		engine: make(chan struct{}, cfg.Workers),
		quit:   make(chan struct{}),
		adm:    newAdmission(cfg.MaxInflightU),
		mux:    http.NewServeMux(),
	}
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.SampleInterval > 0 {
		s.wg.Add(1)
		go s.sampler()
	}
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the worker pool: running queries are canceled and unwound
// at their next safe point, queued queries transition to canceled, and
// Close returns when every worker has exited.
func (s *Server) Close() {
	s.once.Do(func() {
		close(s.quit)
		for _, j := range s.reg.list() {
			j.cancel()
		}
		s.wg.Wait()
		// Finish jobs still sitting in the channel (never dequeued).
		for {
			select {
			case j := <-s.queue:
				if j.finish(client.StateCanceled, errors.New("server shutting down"), nil) {
					s.met.canceled.Inc()
					s.retire(j)
				}
			default:
				s.met.queueDepth.Set(float64(len(s.queue)))
				return
			}
		}
	})
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /queries", s.handleSubmit)
	s.mux.HandleFunc("GET /queries", s.handleList)
	s.mux.HandleFunc("GET /queries/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /queries/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /queries/{id}/progress", s.handleProgress)
	s.mux.HandleFunc("GET /queries/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /admin/drain", s.handleDrain)
	s.mux.HandleFunc("GET /api/timeseries", s.handleTimeseries)
	s.mux.HandleFunc("GET /api/history", s.handleHistoryList)
	s.mux.HandleFunc("GET /api/history/{id}", s.handleHistoryGet)
	s.mux.HandleFunc("GET /api/dashboard/config", s.handleDashboardConfig)
	s.mux.Handle("GET /{$}", dashboard.Handler())
}

// ---- worker pool -----------------------------------------------------

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.met.queueDepth.Set(float64(len(s.queue)))
			s.runJob(j)
		case <-s.quit:
			return
		}
	}
}

// runJob owns one dequeued job: wait for the engine (abandoning the
// wait if the job is canceled first), execute with progress fan-out,
// and drive the terminal transition.
func (s *Server) runJob(j *job) {
	select {
	case s.engine <- struct{}{}:
	case <-j.ctx.Done():
		if j.finish(client.StateCanceled, errors.New("canceled while queued"), nil) {
			s.met.canceled.Inc()
			s.retire(j)
		}
		return
	case <-s.quit:
		if j.finish(client.StateCanceled, errors.New("server shutting down"), nil) {
			s.met.canceled.Inc()
			s.retire(j)
		}
		return
	}
	defer func() { <-s.engine }()

	if !j.setRunning() {
		// Canceled between dequeue and engine acquisition.
		return
	}
	s.adm.markRunning(j.id, time.Now())
	s.met.running.Add(1)
	defer s.met.running.Add(-1)

	// Per-query deadline: layered on the job's cancel context so a user
	// cancel and a timeout are distinguishable afterwards.
	runCtx, cancelRun := j.ctx, func() {}
	if s.cfg.QueryTimeout > 0 {
		runCtx, cancelRun = context.WithTimeout(j.ctx, s.cfg.QueryTimeout)
	}
	defer cancelRun()

	onProgress := func(p Progress) {
		ev := client.EventFromReport(j.id, p.Report)
		ev.Shards = p.Shards
		j.publish(ev)
		s.met.events.Inc()
		// Refine the admission ledger with the indicator's live figures:
		// the budget shrinks as work completes, not just when it finishes.
		s.adm.update(j.id, p.Report, time.Now())
		s.syncAdmissionGauges()
		if j.pace > 0 {
			t := time.NewTimer(j.pace)
			select {
			case <-t.C:
			case <-runCtx.Done():
				t.Stop()
			}
		}
	}

	// Counter baseline for the history profile. With Workers == 1 the
	// engine is held exclusively, so post-minus-pre deltas of engine
	// counters are exactly this query's doing; with Workers > 1 the
	// deltas include neighbors' work and the profile's engine-counter
	// section is approximate.
	before := counterBaseline(s.eng.Registry())

	start := time.Now()
	var res *progressdb.Result
	var err error
	// Worker-level panic boundary: the engine already converts executor
	// panics into *exec.InternalError, but a panic escaping anywhere in
	// the submission path must fail only this job, never the server.
	func() {
		defer func() {
			if r := recover(); r != nil {
				res, err = nil, exec.NewInternalError(r, debug.Stack())
			}
		}()
		res, err = s.eng.ExecQuery(runCtx, j.sql, j.keepRows, onProgress)
	}()
	s.met.wall.Observe(time.Since(start).Seconds())
	j.setCounters(counterDeltas(before, s.eng.Registry()))

	var internal *exec.InternalError
	switch {
	case err == nil:
		if len(res.History) > 0 {
			last := res.History[len(res.History)-1]
			s.adm.observeCompletion(last.DoneU, time.Since(start).Seconds())
		}
		if j.finish(client.StateDone, nil, res) {
			s.met.completed.Inc()
			s.retire(j)
		}
	case errors.Is(err, context.Canceled):
		if j.finish(client.StateCanceled, err, nil) {
			s.met.canceled.Inc()
			s.retire(j)
		}
	case errors.Is(err, context.DeadlineExceeded):
		// A deadline expiry is the server's doing, not the user's: the
		// job fails (with a timeout-flavored error) rather than reading
		// as canceled.
		if j.finish(client.StateFailed, fmt.Errorf("query timeout exceeded: %w", err), nil) {
			s.met.failed.Inc()
			s.met.timedout.Inc()
			s.retire(j)
		}
	default:
		if errors.As(err, &internal) {
			s.met.panicked.Inc()
		}
		if j.finish(client.StateFailed, err, nil) {
			s.met.failed.Inc()
			s.retire(j)
		}
	}
}

// ---- handlers --------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, client.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// shed rejects one submit, tagging the response with the shed reason
// and (when > 0) a Retry-After estimate carried both as the HTTP header
// (whole seconds, rounded up) and with sub-second precision in the body.
func (s *Server) shed(w http.ResponseWriter, status int, reason, msg string, retryAfter float64, queueDepth int) {
	s.met.rejected.Inc()
	if c := s.met.shedByReason[reason]; c != nil {
		c.Inc()
	}
	resp := client.ErrorResponse{Error: msg, Reason: reason, QueueDepth: queueDepth}
	if retryAfter > 0 {
		resp.RetryAfterSeconds = retryAfter
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retryAfter))))
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req client.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeErr(w, http.StatusBadRequest, "sql is required")
		return
	}
	if req.PaceMS < 0 || req.PaceMS > 10_000 {
		writeErr(w, http.StatusBadRequest, "pace_ms must be in [0, 10000]")
		return
	}
	if req.DeadlineMS < 0 {
		writeErr(w, http.StatusBadRequest, "deadline_ms must be >= 0")
		return
	}
	select {
	case <-s.quit:
		writeErr(w, http.StatusServiceUnavailable, "server shutting down")
		return
	default:
	}
	if s.draining.Load() {
		s.shed(w, http.StatusServiceUnavailable, client.ShedDraining,
			"server draining, not admitting new queries", 0, 0)
		return
	}

	// Price the query with the optimizer's initial estimate — a pure
	// catalog read, safe concurrently with whatever the engine is
	// executing. An unplannable query is admitted at unknown cost (< 0)
	// and fails in execution with full error attribution.
	costU, costErr := s.eng.EstimateCostU(req.SQL)
	if costErr != nil {
		costU = -1
	}

	s.mu.Lock()
	s.nextQ++
	id := fmt.Sprintf("q%d", s.nextQ)
	s.mu.Unlock()
	name := req.Name
	if name == "" {
		name = id
	}
	j := newJob(id, name, req.SQL, req.KeepRows, time.Duration(req.PaceMS)*time.Millisecond)

	// Cost- and deadline-based admission: check and ledger insert are
	// atomic, so concurrent submits cannot overshoot the budget.
	switch v := s.adm.admit(j.id, costU, req.DeadlineMS, time.Now()); v.reason {
	case client.ShedBudget:
		s.shed(w, http.StatusTooManyRequests, v.reason,
			fmt.Sprintf("in-flight work budget exhausted (%.0f U in flight, query needs %.0f U of %.0f U budget), retry later",
				s.adm.inflightU(), costU, s.cfg.MaxInflightU),
			v.retryAfter, 0)
		return
	case client.ShedDeadline:
		s.shed(w, http.StatusTooManyRequests, v.reason,
			fmt.Sprintf("estimated completion in %.0f ms exceeds deadline_ms=%d, failing fast",
				v.estimatedMS, req.DeadlineMS), 0, 0)
		return
	}

	// Queue-depth admission: reject rather than block when full.
	select {
	case s.queue <- j:
	default:
		s.adm.remove(j.id)
		s.shed(w, http.StatusTooManyRequests, client.ShedQueueFull,
			"admission queue full, retry later", s.adm.retryAfter(time.Now()), cap(s.queue))
		return
	}
	s.reg.add(j)
	s.met.admitted.Inc()
	s.met.queueDepth.Set(float64(len(s.queue)))
	s.syncAdmissionGauges()
	writeJSON(w, http.StatusAccepted, client.SubmitResponse{
		ID:            j.id,
		State:         j.currentState(),
		QueuePosition: s.reg.queuePosition(j),
	})
}

// syncAdmissionGauges refreshes the budget gauges from the ledger.
func (s *Server) syncAdmissionGauges() {
	s.met.inflightU.Set(s.adm.inflightU())
	s.met.inflightQ.Set(float64(s.adm.count()))
	s.met.drainRate.Set(s.adm.rate())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.reg.list()
	out := make([]client.QueryInfo, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.info(s.reg.queuePosition(j)))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.reg.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such query %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.info(s.reg.queuePosition(j)))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	j.cancel()
	// A job still waiting in the queue (or for the engine) transitions
	// immediately; its worker will observe the terminal state and skip
	// it. A running job transitions when the executor unwinds.
	j.mu.Lock()
	queued := j.state == client.StateQueued
	j.mu.Unlock()
	if queued {
		if j.finish(client.StateCanceled, errors.New("canceled while queued"), nil) {
			s.met.canceled.Inc()
			s.retire(j)
		}
	}
	writeJSON(w, http.StatusOK, j.info(0))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	res, done := j.result()
	if !done {
		writeErr(w, http.StatusNotFound, "query %s has no result (state %s)", j.id, j.currentState())
		return
	}
	writeJSON(w, http.StatusOK, client.ResultResponse{
		ID:             j.id,
		Columns:        res.Columns,
		Rows:           res.Rows,
		RowCount:       res.RowCount(),
		VirtualSeconds: res.VirtualSeconds,
		Refreshes:      len(res.History),
	})
}

// handleProgress streams a query's progress events as SSE: a replay of
// everything already published, then live events until the terminal one.
// Every event carries an `id:` line with its sequence number; a
// reconnecting client that presents `Last-Event-ID` has the replay
// filtered to events it has not yet seen, so a dropped connection can be
// resumed without duplicates or gaps.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	lastSeen := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "Last-Event-ID must be a non-negative event sequence number")
			return
		}
		lastSeen = n
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeErr(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	replay, sub, sid := j.subscribe()
	defer j.unsubscribe(sid)
	s.met.sseSubs.Add(1)
	defer s.met.sseSubs.Add(-1)

	write := func(ev client.ProgressEvent) bool {
		if ev.Seq <= lastSeen {
			// Already delivered on a previous connection. A terminal event
			// still closes the stream — the query is over either way.
			return !ev.Terminal()
		}
		name := "progress"
		if ev.Terminal() {
			name = string(ev.State)
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, name, data); err != nil {
			return false
		}
		fl.Flush()
		return !ev.Terminal()
	}

	for _, ev := range replay {
		if !write(ev) {
			return
		}
	}
	for {
		var evs []client.ProgressEvent
		var alive, ping bool
		if s.cfg.KeepAlive > 0 {
			evs, alive, ping = sub.waitKeepAlive(r.Context(), s.cfg.KeepAlive)
		} else {
			evs, alive = sub.wait(r.Context())
		}
		if !alive {
			return // client went away
		}
		if ping {
			// SSE comment line: ignored by event parsers, but keeps the
			// connection warm through proxies while a slow (or paced)
			// query is between refreshes.
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
			s.met.pings.Inc()
			continue
		}
		for _, ev := range evs {
			if !write(ev) {
				return
			}
		}
	}
}

// handleMetrics serves the Prometheus page. The engine's instruments
// are atomic and its clock gauges read the shared clock group, so the
// full page renders concurrently with running queries — no engine
// acquisition needed.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var text string
	if s.met.shared {
		text = s.eng.MetricsText()
	} else {
		text = s.met.reg.PrometheusText() + s.eng.MetricsText()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, text)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, client.HealthResponse{
		Status:          status,
		Queued:          len(s.queue),
		Running:         int(s.met.running.Value()),
		Workers:         s.cfg.Workers,
		InflightU:       s.adm.inflightU(),
		InflightQueries: s.adm.count(),
		MaxInflightU:    s.cfg.MaxInflightU,
		Shards:          s.eng.Health(),
	})
}

// Progress-aware admission control: the server prices every query with
// the optimizer's initial cost estimate (Engine.EstimateCostU) and
// tracks, for each admitted query, the live remaining-work figure the
// progress indicator refines while it runs (EstimatedCostU − DoneU).
// The sum across in-flight queries is the server's remaining-work
// budget; a submit that would push it past Config.MaxInflightU is shed
// with 429 before any work is queued. This is the paper's estimator
// doing operations work: overload decisions are cost-based, not
// count-based — ten cheap index probes admit where one 40M-page join
// would not.
//
// The same ledger answers two time questions. Retry-After on a shed is
// derived from the remaining-time estimate of the cheapest in-flight
// query (its virtual estimate scaled by the query's own observed
// virtual-to-wall rate). Deadline fail-fast converts the total
// in-flight remaining U plus the newcomer's own cost into wall seconds
// via an EWMA of the observed drain rate (U per wall second), and
// rejects a query whose deadline_ms the estimate already overshoots —
// in microseconds, instead of letting it time out after queueing.
package server

import (
	"math"
	"sync"
	"time"

	"progressdb"
	"progressdb/client"
)

// inflightEntry is one admitted, not-yet-terminal query in the ledger.
type inflightEntry struct {
	// estU is the latest total-cost estimate in U: the optimizer figure
	// at admission, refined by progress reports while running. < 0 when
	// the cost could not be estimated (the query is admitted and fails
	// or runs under the unknown-cost policy).
	estU  float64
	doneU float64
	// started is the wall-clock execution start; zero while queued.
	started time.Time
	// elapsedV / remainingV are the latest report's virtual elapsed
	// seconds and remaining-time estimate (remainingV < 0 = unknown).
	elapsedV   float64
	remainingV float64
}

// remainingU is the entry's outstanding work estimate.
func (e *inflightEntry) remainingU() float64 {
	if e.estU < 0 {
		return 0 // unknown-cost queries don't count against the budget
	}
	return math.Max(e.estU-e.doneU, 0)
}

// admission is the server's in-flight remaining-work ledger.
type admission struct {
	mu           sync.Mutex
	maxInflightU float64 // 0 = unlimited
	jobs         map[string]*inflightEntry
	// uPerWallSec is the EWMA drain rate observed from progress reports
	// and completions; 0 until the first observation.
	uPerWallSec float64
}

const admissionRateAlpha = 0.3 // EWMA weight of the newest rate sample

func newAdmission(maxInflightU float64) *admission {
	return &admission{maxInflightU: maxInflightU, jobs: make(map[string]*inflightEntry)}
}

// verdict is the outcome of one admission decision.
type verdict struct {
	// reason is empty when admitted, else one of client.ShedBudget /
	// client.ShedDeadline.
	reason string
	// retryAfter is the capacity estimate attached to budget sheds, in
	// wall seconds.
	retryAfter float64
	// estimatedMS is the completion estimate that tripped a deadline
	// shed.
	estimatedMS float64
}

// admit prices one query against the budget and (when deadlineMS > 0)
// against its deadline, atomically inserting it into the ledger on
// success — check and insert are one critical section, so two racing
// submits cannot both squeeze into the last slice of budget.
func (a *admission) admit(id string, costU float64, deadlineMS int64, now time.Time) verdict {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.maxInflightU > 0 && costU > 0 && a.inflightULocked()+costU > a.maxInflightU {
		return verdict{reason: client.ShedBudget, retryAfter: a.retryAfterLocked(now)}
	}
	if deadlineMS > 0 && costU >= 0 && a.uPerWallSec > 0 {
		totalU := a.inflightULocked() + costU
		estMS := totalU / a.uPerWallSec * 1000
		if estMS > float64(deadlineMS) {
			return verdict{reason: client.ShedDeadline, estimatedMS: estMS}
		}
	}
	a.jobs[id] = &inflightEntry{estU: costU, remainingV: -1}
	return verdict{}
}

// markRunning stamps the query's wall-clock execution start.
func (a *admission) markRunning(id string, now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e, ok := a.jobs[id]; ok {
		e.started = now
	}
}

// update folds one progress refresh into the ledger and feeds the
// observed drain rate EWMA.
func (a *admission) update(id string, r progressdb.Report, now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e, ok := a.jobs[id]
	if !ok {
		return
	}
	if r.EstimatedCostU > 0 {
		e.estU = r.EstimatedCostU
	}
	if r.DoneU > e.doneU {
		e.doneU = r.DoneU
	}
	e.elapsedV = r.ElapsedSeconds
	e.remainingV = r.RemainingSeconds
	if math.IsNaN(e.remainingV) || math.IsInf(e.remainingV, 0) {
		e.remainingV = -1
	}
	if !e.started.IsZero() && e.doneU > 0 {
		if wall := now.Sub(e.started).Seconds(); wall > 0.005 {
			a.observeRateLocked(e.doneU / wall)
		}
	}
}

// observeCompletion feeds a finished query's whole-run drain rate.
func (a *admission) observeCompletion(doneU, wallSeconds float64) {
	if doneU <= 0 || wallSeconds <= 0 {
		return
	}
	a.mu.Lock()
	a.observeRateLocked(doneU / wallSeconds)
	a.mu.Unlock()
}

func (a *admission) observeRateLocked(rate float64) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return
	}
	if a.uPerWallSec <= 0 {
		a.uPerWallSec = rate
		return
	}
	a.uPerWallSec = admissionRateAlpha*rate + (1-admissionRateAlpha)*a.uPerWallSec
}

// remove retires one query from the ledger (terminal state reached).
func (a *admission) remove(id string) {
	a.mu.Lock()
	delete(a.jobs, id)
	a.mu.Unlock()
}

// inflightU is the current remaining-work estimate across admitted
// queries, in U.
func (a *admission) inflightU() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflightULocked()
}

func (a *admission) inflightULocked() float64 {
	var sum float64
	for _, e := range a.jobs {
		sum += e.remainingU()
	}
	return sum
}

// count is the number of admitted, not-yet-terminal queries.
func (a *admission) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.jobs)
}

// rate exposes the drain-rate EWMA (0 before the first observation).
func (a *admission) rate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.uPerWallSec
}

// retryAfter estimates when capacity frees up, in wall seconds.
func (a *admission) retryAfter(now time.Time) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.retryAfterLocked(now)
}

// retryAfterLocked is the smallest wall-clock remaining-time estimate
// across running queries: each query's virtual remaining-time estimate
// scaled by its own observed virtual-to-wall rate (paced queries run
// virtual seconds in wall seconds; unpaced ones in microseconds).
// Clamped to [1, 600] — Retry-After is advice, not a contract.
func (a *admission) retryAfterLocked(now time.Time) float64 {
	best := math.Inf(1)
	for _, e := range a.jobs {
		if e.started.IsZero() || e.elapsedV <= 0 || e.remainingV < 0 {
			continue
		}
		wall := now.Sub(e.started).Seconds()
		if wall <= 0 {
			continue
		}
		if rem := e.remainingV * (wall / e.elapsedV); rem < best {
			best = rem
		}
	}
	if math.IsInf(best, 1) {
		return 1
	}
	return math.Min(math.Max(best, 1), 600)
}

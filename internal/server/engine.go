// Engine abstraction: the server fronts either a single progressdb.DB
// or an internal/fleet sharded deployment through one interface, so the
// HTTP surface — admission control, SSE fan-out, metrics, history — is
// identical for both.
package server

import (
	"context"
	"math"

	"progressdb"
	"progressdb/client"
	"progressdb/internal/fleet"
	"progressdb/internal/obs"
)

// Progress is one engine progress refresh as the server publishes it:
// the global report plus, for sharded engines, the per-shard breakdown
// already converted to wire form.
type Progress struct {
	Report progressdb.Report
	Shards []client.ShardProgress
}

// Engine is the execution backend behind a Server.
type Engine interface {
	// ExecQuery runs sql under ctx, materializing rows only when
	// keepRows is set, and invokes onProgress (if non-nil) at every
	// progress refresh.
	ExecQuery(ctx context.Context, sql string, keepRows bool, onProgress func(Progress)) (*progressdb.Result, error)
	// Registry returns the engine-side metrics registry, or nil when
	// engine metrics are disabled (the server then keeps a private one).
	Registry() *obs.Registry
	// Metrics snapshots the engine-side instruments (empty when
	// disabled). Safe to call while queries run: instruments are
	// atomic and clock gauges read the engine's shared clock group.
	Metrics() []obs.Sample
	// MetricsText renders the engine-side Prometheus page (empty when
	// disabled). Safe to call while queries run.
	MetricsText() string
	// Shards returns the engine's shard count: 1 for a single DB, N for
	// a fleet.
	Shards() int
	// EstimateCostU prices sql with the optimizer's initial total-cost
	// estimate in U, without executing it — a pure catalog/plan read,
	// safe to call concurrently with a running query.
	EstimateCostU(sql string) (float64, error)
	// Health reports per-shard circuit-breaker health in wire form; nil
	// for engines without shard-level failure domains (single DB).
	Health() []client.ShardHealth
}

// dbEngine adapts a single progressdb.DB.
type dbEngine struct{ db *progressdb.DB }

func (e dbEngine) ExecQuery(ctx context.Context, sql string, keepRows bool, onProgress func(Progress)) (*progressdb.Result, error) {
	var cb func(progressdb.Report)
	if onProgress != nil {
		cb = func(r progressdb.Report) { onProgress(Progress{Report: r}) }
	}
	if keepRows {
		return e.db.ExecContext(ctx, sql, cb)
	}
	return e.db.ExecDiscardContext(ctx, sql, cb)
}

func (e dbEngine) Registry() *obs.Registry { return e.db.Registry() }
func (e dbEngine) Metrics() []obs.Sample   { return e.db.Metrics() }
func (e dbEngine) MetricsText() string     { return e.db.MetricsText() }
func (e dbEngine) Shards() int             { return 1 }

func (e dbEngine) EstimateCostU(sql string) (float64, error) { return e.db.EstimateCostU(sql) }
func (e dbEngine) Health() []client.ShardHealth              { return nil }

// fleetEngine adapts an internal/fleet deployment. The fleet's own
// coordinator handles fan-out, merge, and progress aggregation; the
// adapter converts its report/result shapes to the single-engine ones
// the server publishes.
type fleetEngine struct{ f *fleet.Fleet }

func (e fleetEngine) ExecQuery(ctx context.Context, sql string, keepRows bool, onProgress func(Progress)) (*progressdb.Result, error) {
	var cb func(fleet.Report)
	if onProgress != nil {
		cb = func(r fleet.Report) {
			onProgress(Progress{Report: r.Report, Shards: shardBreakdown(r.Shards)})
		}
	}
	var res *fleet.Result
	var err error
	if keepRows {
		res, err = e.f.ExecContext(ctx, sql, cb)
	} else {
		res, err = e.f.ExecDiscardContext(ctx, sql, cb)
	}
	if err != nil {
		return nil, err
	}
	out := &progressdb.Result{
		Columns:        res.Columns,
		Rows:           res.Rows,
		VirtualSeconds: res.VirtualSeconds,
		History:        make([]progressdb.Report, 0, len(res.History)),
	}
	for _, rep := range res.History {
		out.History = append(out.History, rep.Report)
	}
	return out, nil
}

func (e fleetEngine) Registry() *obs.Registry { return e.f.Registry() }
func (e fleetEngine) Metrics() []obs.Sample   { return e.f.Metrics() }
func (e fleetEngine) MetricsText() string     { return e.f.MetricsText() }
func (e fleetEngine) Shards() int             { return e.f.Shards() }

func (e fleetEngine) EstimateCostU(sql string) (float64, error) { return e.f.EstimateCostU(sql) }

func (e fleetEngine) Health() []client.ShardHealth {
	hs := e.f.Health()
	out := make([]client.ShardHealth, 0, len(hs))
	for _, h := range hs {
		out = append(out, client.ShardHealth{
			Shard:               h.Shard,
			Breaker:             h.Breaker,
			ConsecutiveFailures: h.ConsecutiveFailures,
			Retries:             h.Retries,
			Trips:               h.Trips,
			FastFails:           h.FastFails,
		})
	}
	return out
}

// shardBreakdown converts a fleet report's per-shard slice to wire form.
func shardBreakdown(shards []fleet.ShardReport) []client.ShardProgress {
	if len(shards) == 0 {
		return nil
	}
	out := make([]client.ShardProgress, 0, len(shards))
	for _, sr := range shards {
		out = append(out, client.ShardProgress{
			Shard:          sr.Shard,
			Percent:        finiteOrNeg1(sr.Report.Percent),
			DoneU:          finiteOrNeg1(sr.Report.DoneU),
			EstTotalU:      finiteOrNeg1(sr.Report.EstimatedCostU),
			SpeedU:         finiteOrNeg1(sr.Report.SpeedU),
			ElapsedSeconds: finiteOrNeg1(sr.Report.ElapsedSeconds),
			Finished:       sr.Report.Finished,
		})
	}
	return out
}

// finiteOrNeg1 maps NaN and ±Inf to -1, matching the wire convention for
// the event's top-level fields (JSON cannot carry non-finite numbers).
func finiteOrNeg1(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}

package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"progressdb"
	"progressdb/client"
	"progressdb/internal/fleet"
)

// getJSON fetches a URL and decodes its JSON body.
func getJSON(t *testing.T, url string, out interface{}) error {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// syntheticFleet builds a 4-shard fleet holding the same synthetic table
// as syntheticDB, rows hash-routed on k.
func syntheticFleet(t testing.TB) *fleet.Fleet {
	t.Helper()
	f, err := fleet.New(fleet.Config{
		Shards: 4,
		Shard: progressdb.Config{
			ProgressUpdateSeconds: 0.25,
			SpeedWindowSeconds:    1,
			SeqPageCost:           0.05,
			RandPageCost:          0.4,
			BufferPoolPages:       64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CreateTable("t", "k",
		progressdb.Col("k", progressdb.Int), progressdb.Col("pad", progressdb.Text)); err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 100)
	for i := 0; i < 20000; i++ {
		if err := f.Insert("t", int64(i), pad); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Analyze(); err != nil {
		t.Fatal(err)
	}
	if err := f.ColdRestart(); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFleetServing runs the full HTTP surface against a sharded fleet:
// submit, stream progress with per-shard breakdowns, fetch the merged
// result, and scrape the coordinator's fleet_* metrics.
func TestFleetServing(t *testing.T) {
	f := syntheticFleet(t)
	s := NewFleet(f, Config{Workers: 1, QueueDepth: 4, SampleInterval: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	cl := client.New(ts.URL)
	ctx := context.Background()

	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t", KeepRows: true})
	if err != nil {
		t.Fatal(err)
	}

	var events []client.ProgressEvent
	if err := cl.Stream(ctx, sub.ID, func(ev client.ProgressEvent) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("only %d progress events", len(events))
	}
	last := events[len(events)-1]
	if last.State != client.StateDone || last.Percent != 100 {
		t.Fatalf("terminal event: state=%s percent=%.1f", last.State, last.Percent)
	}
	// Per-shard breakdown must reach the wire, with sane shard ids.
	withShards := 0
	for _, ev := range events {
		if len(ev.Shards) > 0 {
			withShards++
			for _, sp := range ev.Shards {
				if sp.Shard < 0 || sp.Shard >= 4 {
					t.Fatalf("event %d names shard %d", ev.Seq, sp.Shard)
				}
			}
		}
	}
	if withShards == 0 {
		t.Fatal("no progress event carried a per-shard breakdown")
	}
	// Monotone global progress on the wire.
	lastPct := -1.0
	for _, ev := range events {
		if ev.Percent < lastPct {
			t.Fatalf("event %d: percent %g < %g", ev.Seq, ev.Percent, lastPct)
		}
		lastPct = ev.Percent
	}

	res, err := cl.Result(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount != 20000 {
		t.Fatalf("merged result has %d rows, want 20000", res.RowCount)
	}

	// The metrics page is the coordinator's registry.
	text, err := cl.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fleet_shards 4", "fleet_queries_total 1", "fleet_subqueries_total 4"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// Dashboard config flips into fleet mode.
	cfgResp := struct {
		Shards          int      `json:"shards"`
		SparklineSeries []string `json:"sparkline_series"`
	}{}
	if err := getJSON(t, ts.URL+"/api/dashboard/config", &cfgResp); err != nil {
		t.Fatal(err)
	}
	if cfgResp.Shards != 4 {
		t.Fatalf("dashboard config shards = %d, want 4", cfgResp.Shards)
	}
	hasFleetSeries := false
	for _, name := range cfgResp.SparklineSeries {
		if strings.HasPrefix(name, "fleet_") {
			hasFleetSeries = true
		}
		if strings.HasPrefix(name, "engine_") || strings.HasPrefix(name, "bufferpool_") {
			t.Fatalf("fleet dashboard config lists per-shard engine series %q", name)
		}
	}
	if !hasFleetSeries {
		t.Fatal("fleet dashboard config lists no fleet_ series")
	}
}

// TestFleetServingUnsupported: a non-distributable query fails loudly
// through the HTTP surface with the coordinator's reason.
func TestFleetServingUnsupported(t *testing.T) {
	f := syntheticFleet(t)
	s := NewFleet(f, Config{Workers: 1, QueueDepth: 4, SampleInterval: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	cl := client.New(ts.URL)
	ctx := context.Background()

	sub, err := cl.Submit(ctx, client.SubmitRequest{
		SQL: "select * from t a, t b where a.k <> b.k",
	})
	if err != nil {
		t.Fatal(err)
	}
	info := waitState(t, cl, sub.ID, client.StateFailed)
	if !strings.Contains(info.Error, "not shard-distributable") {
		t.Fatalf("failure reason %q does not name the rejection", info.Error)
	}
}

// TestFleetServingTimeseries drives the sampler and checks per-shard
// heatmap series land in /api/timeseries.
func TestFleetServingTimeseries(t *testing.T) {
	f := syntheticFleet(t)
	s := NewFleet(f, Config{Workers: 1, QueueDepth: 4, SampleInterval: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	cl := client.New(ts.URL)
	ctx := context.Background()

	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select count(*) from t"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Stream(ctx, sub.ID, func(client.ProgressEvent) error { return nil }); err != nil {
		t.Fatal(err)
	}
	s.sampleOnce(1)
	s.sampleOnce(2)

	tsr, err := cl.Timeseries(ctx, client.TimeseriesRequest{WindowSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, series := range tsr.Series {
		if strings.HasPrefix(series.Name, "fleet_shard_percent{") && len(series.Points) > 0 {
			found[series.Name] = true
		}
	}
	for shard := 0; shard < 4; shard++ {
		id := `fleet_shard_percent{shard="` + string(rune('0'+shard)) + `"}`
		if !found[id] {
			t.Fatalf("timeseries missing heatmap series %s (have %v)", id, found)
		}
	}
}

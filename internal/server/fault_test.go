package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"progressdb/client"
)

// TestPanickedJobFailsOnlyThatJob is the acceptance scenario for the
// server's panic boundary: an injected executor panic turns into a
// "failed" job with an internal-error message, the panicked counter
// ticks, and the very next job on the same engine completes normally.
func TestPanickedJobFailsOnlyThatJob(t *testing.T) {
	db := syntheticDB(t)
	_, cl := testServer(t, db, Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	if err := db.SetFaultSpec("panicnth=20"); err != nil {
		t.Fatal(err)
	}
	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t", Name: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	info := waitState(t, cl, sub.ID, client.StateFailed)
	if !strings.Contains(info.Error, "internal error") {
		t.Fatalf("failed job error = %q, want an internal error", info.Error)
	}
	if err := db.SetFaultSpec(""); err != nil {
		t.Fatal(err)
	}

	// The engine and the server survive: same SQL now completes.
	sub2, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t where k < 10", Name: "survivor"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, sub2.ID, client.StateDone)

	if err := db.CheckLeaks(); err != nil {
		t.Fatalf("after panicked job: %v", err)
	}
	text, err := cl.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"server_queries_panicked_total 1",
		"server_queries_failed_total 1",
		"server_queries_completed_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestQueryTimeoutFailsJob: a paced query outlives Config.QueryTimeout,
// finishes "failed" with a timeout error (not "canceled" — that state is
// reserved for user cancellation), and ticks the timedout counter;
// an un-paced query on the same server finishes inside the deadline.
func TestQueryTimeoutFailsJob(t *testing.T) {
	db := syntheticDB(t)
	_, cl := testServer(t, db, Config{Workers: 1, QueueDepth: 4, QueryTimeout: 120 * time.Millisecond})
	ctx := context.Background()

	// PaceMS stretches real execution far past the deadline.
	slow, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t", PaceMS: 60})
	if err != nil {
		t.Fatal(err)
	}
	info := waitState(t, cl, slow.ID, client.StateFailed)
	if !strings.Contains(info.Error, "timeout") {
		t.Fatalf("timed-out job error = %q, want a timeout error", info.Error)
	}

	fast, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t where k < 10"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, fast.ID, client.StateDone)

	if err := db.CheckLeaks(); err != nil {
		t.Fatalf("after timed-out job: %v", err)
	}
	text, err := cl.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"server_queries_timedout_total 1",
		"server_queries_failed_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// Graceful drain: SIGTERM (via progressd) and POST /admin/drain both
// funnel into Server.Drain, which stops admitting new queries, lets the
// in-flight ones finish within the drain deadline, and then cancels the
// stragglers at their next executor safe point. Terminal transitions go
// through the same finish/retire path as every other ending, so each
// drained query still publishes exactly one terminal SSE event and lands
// in the history store exactly once.
package server

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"progressdb/client"
)

// drainPollInterval is how often Drain re-checks the registry for
// remaining non-terminal jobs while waiting out the deadline.
const drainPollInterval = 5 * time.Millisecond

// drainForceWait bounds the post-cancel wait for force-canceled queries
// to unwind; the executor reaches a safe point within a few page
// accesses, so this is generous.
const drainForceWait = 5 * time.Second

// Drain moves the server into draining mode and waits up to timeout
// (Config.DrainTimeout when <= 0) for in-flight queries to reach a
// terminal state. Queries still alive at the deadline are force-canceled
// and counted in the response. Drain is idempotent: a second call simply
// waits alongside the first. The server stays in draining mode — submits
// are shed with reason "draining" — until Close.
func (s *Server) Drain(timeout time.Duration) client.DrainResponse {
	if timeout <= 0 {
		timeout = s.cfg.DrainTimeout
	}
	if s.draining.CompareAndSwap(false, true) {
		s.met.drains.Inc()
		s.met.drainingG.Set(1)
	}
	start := time.Now()
	deadline := start.Add(timeout)
	for time.Now().Before(deadline) {
		if len(s.nonTerminal()) == 0 {
			return client.DrainResponse{Drained: true, WaitedMS: time.Since(start).Milliseconds()}
		}
		time.Sleep(drainPollInterval)
	}

	// Deadline expired: cancel whatever is left. Queued jobs transition
	// immediately (their worker observes the terminal state and skips
	// them); running jobs unwind at the executor's next safe point.
	forced := 0
	for _, j := range s.nonTerminal() {
		forced++
		s.met.drainForced.Inc()
		j.cancel()
		j.mu.Lock()
		queued := j.state == client.StateQueued
		j.mu.Unlock()
		if queued {
			if j.finish(client.StateCanceled, errors.New("canceled by drain"), nil) {
				s.met.canceled.Inc()
				s.retire(j)
			}
		}
	}
	forceDeadline := time.Now().Add(drainForceWait)
	for time.Now().Before(forceDeadline) && len(s.nonTerminal()) > 0 {
		time.Sleep(drainPollInterval)
	}
	return client.DrainResponse{
		Drained:       len(s.nonTerminal()) == 0 && forced == 0,
		ForcedCancels: forced,
		WaitedMS:      time.Since(start).Milliseconds(),
	}
}

// nonTerminal lists the registry's jobs that have not finished yet.
func (s *Server) nonTerminal() []*job {
	var out []*job
	for _, j := range s.reg.list() {
		switch j.currentState() {
		case client.StateDone, client.StateFailed, client.StateCanceled:
		default:
			out = append(out, j)
		}
	}
	return out
}

// handleDrain is POST /admin/drain?timeout_ms=N. It blocks until the
// drain resolves and reports whether it was clean.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	timeout := s.cfg.DrainTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "timeout_ms must be a non-negative integer")
			return
		}
		timeout = time.Duration(n) * time.Millisecond
	}
	writeJSON(w, http.StatusOK, s.Drain(timeout))
}

package server

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"progressdb"
	"progressdb/client"
)

const scanSQL = "select * from t"

// shedError asserts err is a 429/503 shed with the given reason.
func shedError(t *testing.T, err error, status int, reason string) *client.APIError {
	t.Helper()
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T %v, want *client.APIError", err, err)
	}
	if ae.Status != status || ae.Reason != reason {
		t.Fatalf("shed = %d/%q, want %d/%q (msg %q)", ae.Status, ae.Reason, status, reason, ae.Msg)
	}
	return ae
}

// TestAdmissionBudgetShed drives the server into a cost-based shed: with
// a budget sized for one scan, the second submit is rejected with 429,
// reason "budget", and a Retry-After estimate; once the in-flight query
// retires, the budget frees and the same submit is admitted.
func TestAdmissionBudgetShed(t *testing.T) {
	db := syntheticDB(t)
	costU, err := db.EstimateCostU(scanSQL)
	if err != nil {
		t.Fatal(err)
	}
	if costU <= 0 {
		t.Fatalf("estimate = %g, want > 0", costU)
	}
	_, cl := testServer(t, db, Config{Workers: 1, QueueDepth: 4, MaxInflightU: 1.5 * costU})
	ctx := context.Background()

	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: scanSQL, PaceMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, sub.ID, client.StateRunning)

	_, err = cl.Submit(ctx, client.SubmitRequest{SQL: scanSQL})
	ae := shedError(t, err, http.StatusTooManyRequests, client.ShedBudget)
	if ae.RetryAfterSeconds < 1 {
		t.Fatalf("budget shed Retry-After = %g, want >= 1s", ae.RetryAfterSeconds)
	}

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.InflightQueries != 1 || h.MaxInflightU != 1.5*costU || h.InflightU <= 0 {
		t.Fatalf("healthz budget figures: %+v", h)
	}

	// Retire the running query: the ledger entry goes with it and the
	// same submit is admitted.
	if _, err := cl.Cancel(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, sub.ID, client.StateCanceled)
	sub2, err := cl.Submit(ctx, client.SubmitRequest{SQL: scanSQL})
	if err != nil {
		t.Fatalf("submit after budget freed: %v", err)
	}
	waitState(t, cl, sub2.ID, client.StateDone)
}

// TestAdmissionDeadlineShed: once the server has observed a drain rate,
// a submit whose estimated completion overshoots its deadline_ms is
// failed fast with reason "deadline"; a generous deadline is admitted.
func TestAdmissionDeadlineShed(t *testing.T) {
	db := syntheticDB(t)
	_, cl := testServer(t, db, Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	// Seed the drain-rate EWMA with one completed run.
	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: scanSQL})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, sub.ID, client.StateDone)

	_, err = cl.Submit(ctx, client.SubmitRequest{SQL: scanSQL, DeadlineMS: 1})
	ae := shedError(t, err, http.StatusTooManyRequests, client.ShedDeadline)
	if !strings.Contains(ae.Msg, "deadline_ms=1") {
		t.Fatalf("deadline shed message %q does not name the deadline", ae.Msg)
	}

	sub2, err := cl.Submit(ctx, client.SubmitRequest{SQL: scanSQL, DeadlineMS: 600_000})
	if err != nil {
		t.Fatalf("generous deadline rejected: %v", err)
	}
	waitState(t, cl, sub2.ID, client.StateDone)
}

// TestAdmissionQueueFullShed: the queue-depth rejection now carries the
// shed reason and a Retry-After estimate alongside the legacy queue
// capacity field.
func TestAdmissionQueueFullShed(t *testing.T) {
	db := syntheticDB(t)
	_, cl := testServer(t, db, Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()

	first, err := cl.Submit(ctx, client.SubmitRequest{SQL: scanSQL, PaceMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, first.ID, client.StateRunning)
	if _, err := cl.Submit(ctx, client.SubmitRequest{SQL: scanSQL}); err != nil {
		t.Fatalf("queued submit: %v", err)
	}

	_, err = cl.Submit(ctx, client.SubmitRequest{SQL: scanSQL})
	ae := shedError(t, err, http.StatusTooManyRequests, client.ShedQueueFull)
	if ae.QueueDepth != 1 || ae.RetryAfterSeconds < 1 {
		t.Fatalf("queue-full shed: depth=%d retry-after=%g", ae.QueueDepth, ae.RetryAfterSeconds)
	}
	if _, err := cl.Cancel(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
}

// TestDrainForcesStragglers: a drain whose deadline expires force-cancels
// the running query with exactly one terminal transition, flips the
// server into draining mode (healthz + shed reason), and keeps it there.
func TestDrainForcesStragglers(t *testing.T) {
	db := syntheticDB(t)
	_, cl := testServer(t, db, Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: scanSQL, PaceMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, sub.ID, client.StateRunning)

	// Stream in parallel so the exactly-once terminal event is observable.
	terminals := make(chan client.State, 4)
	go func() {
		cl2 := client.New(cl.BaseURL())
		cl2.Stream(context.Background(), sub.ID, func(ev client.ProgressEvent) error {
			if ev.Terminal() {
				terminals <- ev.State
			}
			return nil
		})
	}()

	dr, err := cl.Drain(ctx, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Drained || dr.ForcedCancels != 1 {
		t.Fatalf("drain = %+v, want one forced cancel", dr)
	}
	info := waitState(t, cl, sub.ID, client.StateCanceled)
	if info.Error == "" {
		t.Fatal("force-canceled query carries no error")
	}
	select {
	case st := <-terminals:
		if st != client.StateCanceled {
			t.Fatalf("terminal event state = %s, want canceled", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no terminal SSE event after forced drain")
	}
	select {
	case st := <-terminals:
		t.Fatalf("second terminal event (%s) after drain", st)
	case <-time.After(50 * time.Millisecond):
	}

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("healthz status = %q, want draining", h.Status)
	}
	_, err = cl.Submit(ctx, client.SubmitRequest{SQL: scanSQL})
	shedError(t, err, http.StatusServiceUnavailable, client.ShedDraining)

	// Idempotent: a second drain resolves clean immediately.
	dr2, err := cl.Drain(ctx, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !dr2.Drained || dr2.ForcedCancels != 0 {
		t.Fatalf("second drain = %+v, want clean", dr2)
	}
}

// TestDrainClean: with nothing in flight the drain resolves immediately
// and cleanly.
func TestDrainClean(t *testing.T) {
	db := syntheticDB(t)
	s, cl := testServer(t, db, Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select count(*) from t"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, sub.ID, client.StateDone)

	dr := s.Drain(5 * time.Second)
	if !dr.Drained || dr.ForcedCancels != 0 {
		t.Fatalf("drain = %+v, want clean with no forced cancels", dr)
	}
}

// TestUnplannableQueryAdmitted: a query the optimizer cannot price is
// admitted at unknown cost and fails in execution with its real error —
// admission control must not turn planner errors into 429s.
func TestUnplannableQueryAdmitted(t *testing.T) {
	db := syntheticDB(t)
	_, cl := testServer(t, db, Config{Workers: 1, QueueDepth: 4, MaxInflightU: 1})
	ctx := context.Background()

	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from no_such_table"})
	if err != nil {
		t.Fatalf("unplannable query shed at admission: %v", err)
	}
	info := waitState(t, cl, sub.ID, client.StateFailed)
	if !strings.Contains(info.Error, "no_such_table") {
		t.Fatalf("failure lost the planner error: %q", info.Error)
	}
}

// TestFleetHealthSurface: a fleet-backed server reports per-shard breaker
// health through /healthz.
func TestFleetHealthSurface(t *testing.T) {
	f := syntheticFleet(t)
	s := NewFleet(f, Config{Workers: 1, QueueDepth: 4, SampleInterval: -1})
	t.Cleanup(s.Close)
	hs := s.eng.Health()
	if len(hs) != 4 {
		t.Fatalf("fleet health reports %d shards, want 4", len(hs))
	}
	for i, h := range hs {
		if h.Shard != i || h.Breaker != "closed" {
			t.Fatalf("shard %d health %+v, want closed breaker", i, h)
		}
	}
	if dbHealth := (dbEngine{db: syntheticDB(t)}).Health(); dbHealth != nil {
		t.Fatalf("single-DB engine health = %v, want nil", dbHealth)
	}
}

// admissionReport builds a progress report carrying the given figures.
func admissionReport(done, est, elapsed, remaining float64) progressdb.Report {
	return progressdb.Report{DoneU: done, EstimatedCostU: est, ElapsedSeconds: elapsed, RemainingSeconds: remaining}
}

// TestAdmissionLedger unit-tests the ledger arithmetic: budget sums
// remaining work, progress refreshes shrink it, removal frees it, and
// Retry-After follows the cheapest running query's scaled estimate.
func TestAdmissionLedger(t *testing.T) {
	a := newAdmission(100)
	now := time.Now()
	if v := a.admit("q1", 60, 0, now); v.reason != "" {
		t.Fatalf("q1 shed: %+v", v)
	}
	if v := a.admit("q2", 60, 0, now); v.reason != client.ShedBudget {
		t.Fatalf("q2 verdict %+v, want budget shed", v)
	}
	// q1 progresses: 40 of its 60 U are done, leaving room for q2.
	a.markRunning("q1", now)
	a.update("q1", admissionReport(40, 60, 10, 5), now.Add(50*time.Millisecond))
	if got := a.inflightU(); got != 20 {
		t.Fatalf("inflightU = %g, want 20", got)
	}
	if v := a.admit("q2", 60, 0, now); v.reason != "" {
		t.Fatalf("q2 after progress: %+v, want admitted", v)
	}
	// Retry-After: q1 ran 10 virtual seconds in 0.05 wall seconds and
	// estimates 5 virtual seconds left → 0.025 wall seconds, clamped to 1.
	a.remove("q2")
	if ra := a.retryAfter(now.Add(50 * time.Millisecond)); ra != 1 {
		t.Fatalf("retryAfter = %g, want clamp to 1", ra)
	}
	a.remove("q1")
	if a.inflightU() != 0 || a.count() != 0 {
		t.Fatal("ledger not empty after removals")
	}

	// Unknown-cost queries are admitted and charge nothing.
	if v := a.admit("q3", -1, 0, now); v.reason != "" {
		t.Fatalf("unknown-cost admit: %+v", v)
	}
	if got := a.inflightU(); got != 0 {
		t.Fatalf("unknown-cost inflight = %g, want 0", got)
	}
}

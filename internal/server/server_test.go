package server

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"progressdb"
	"progressdb/client"
)

// syntheticDB builds a small I/O-bound engine whose scans span many
// progress refreshes.
func syntheticDB(t testing.TB) *progressdb.DB {
	t.Helper()
	db := progressdb.Open(progressdb.Config{
		ProgressUpdateSeconds: 0.25,
		SpeedWindowSeconds:    1,
		SeqPageCost:           0.05,
		RandPageCost:          0.4,
		BufferPoolPages:       64,
		Metrics:               true,
	})
	db.MustCreateTable("t", progressdb.Col("k", progressdb.Int), progressdb.Col("pad", progressdb.Text))
	pad := strings.Repeat("x", 100)
	for i := 0; i < 20000; i++ {
		db.MustInsert("t", int64(i), pad)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	if err := db.ColdRestart(); err != nil {
		t.Fatal(err)
	}
	return db
}

// testServer wires a server over db into an httptest stack and returns
// a client for it.
func testServer(t testing.TB, db *progressdb.DB, cfg Config) (*Server, *client.Client) {
	t.Helper()
	s := New(db, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	return s, client.New(ts.URL)
}

func waitState(t *testing.T, cl *client.Client, id string, want client.State) client.QueryInfo {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(15 * time.Second)
	for {
		info, err := cl.Get(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == want {
			return info
		}
		if info.State.Terminal() {
			t.Fatalf("query %s reached %s, want %s (err=%q)", id, info.State, want, info.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("query %s stuck in %s, want %s", id, info.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEndToEndPaperQuery is the acceptance scenario: the paper's Q2 at
// small scale submitted over HTTP with ≥3 advancing SSE progress events
// carrying the Figure 2 fields; a second long-running query DELETEd and
// observed transitioning to canceled with the executor unwound (no
// goroutine leak under -race); /metrics reflecting admitted/canceled.
func TestEndToEndPaperQuery(t *testing.T) {
	db := progressdb.Open(progressdb.Config{
		WorkMemPages:          16,
		BufferPoolPages:       128,
		ProgressUpdateSeconds: 10,
		SeqPageCost:           0.8e-3 / 0.01,
		RandPageCost:          6.4e-3 / 0.01,
		Metrics:               true,
	})
	if err := db.LoadPaperWorkload(0.01, false); err != nil {
		t.Fatal(err)
	}
	if err := db.ColdRestart(); err != nil {
		t.Fatal(err)
	}
	_, cl := testServer(t, db, Config{Workers: 1, QueueDepth: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	baseline := runtime.NumGoroutine()

	// 1. Q2 over HTTP with streamed progress.
	q2, err := progressdb.PaperQuery(2)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: q2, Name: "Q2"})
	if err != nil {
		t.Fatal(err)
	}
	var events []client.ProgressEvent
	var terminal client.ProgressEvent
	if err := cl.Stream(ctx, sub.ID, func(ev client.ProgressEvent) error {
		if ev.Terminal() {
			terminal = ev
		} else {
			events = append(events, ev)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("got %d progress events, want >= 3", len(events))
	}
	if terminal.State != client.StateDone {
		t.Fatalf("terminal = %+v, want done", terminal)
	}
	lastSeq, lastDone := 0, -1.0
	for i, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("event %d: seq %d not increasing (prev %d)", i, ev.Seq, lastSeq)
		}
		if ev.DoneU < lastDone {
			t.Fatalf("event %d: done_u %f went backwards (prev %f)", i, ev.DoneU, lastDone)
		}
		lastSeq, lastDone = ev.Seq, ev.DoneU
		// The paper's Figure 2 fields must all be present and sane.
		if ev.Percent < 0 || ev.Percent > 100 {
			t.Fatalf("event %d: percent %f", i, ev.Percent)
		}
		if ev.EstTotalU <= 0 {
			t.Fatalf("event %d: est_total_u %f", i, ev.EstTotalU)
		}
		if ev.RemainingSeconds < -1 {
			t.Fatalf("event %d: remaining_seconds %f", i, ev.RemainingSeconds)
		}
		if ev.SpeedU < 0 {
			t.Fatalf("event %d: speed_u %f", i, ev.SpeedU)
		}
	}

	// 2. A long-running query, canceled mid-flight over HTTP.
	sub2, err := cl.Submit(ctx, client.SubmitRequest{
		SQL: "select * from lineitem", Name: "big", PaceMS: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, sub2.ID, client.StateRunning)
	if _, err := cl.Cancel(ctx, sub2.ID); err != nil {
		t.Fatal(err)
	}
	info := waitState(t, cl, sub2.ID, client.StateCanceled)
	if info.Error == "" {
		t.Fatal("canceled query should carry an error message")
	}

	// 3. Executor unwound: no goroutine leak once both queries are done.
	// Idle HTTP keep-alive connections each pin a pair of goroutines, so
	// shed them before each count.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cl.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// 4. Metrics reflect the admissions and the cancellation.
	text, err := cl.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"server_queries_admitted_total 2",
		"server_queries_canceled_total 1",
		"server_queries_completed_total 1",
		"server_query_wall_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
	// The engine registry is mounted on the same page.
	if !strings.Contains(text, "bufferpool_hits_total") {
		t.Fatal("/metrics missing engine instruments")
	}
}

// TestAdmissionControl fills the single worker and the bounded queue:
// the next submit must be rejected with 429 and a queue_depth hint,
// while the queued query reports its position.
func TestAdmissionControl(t *testing.T) {
	db := syntheticDB(t)
	_, cl := testServer(t, db, Config{Workers: 1, QueueDepth: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Occupies the worker (paced so it stays running).
	running, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t", PaceMS: 30})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, running.ID, client.StateRunning)

	// Fills the queue.
	queued, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t"})
	if err != nil {
		t.Fatal(err)
	}
	if queued.State != client.StateQueued || queued.QueuePosition != 1 {
		t.Fatalf("second submit = %+v, want queued at position 1", queued)
	}

	// Overflows: 429 with the queue capacity.
	_, err = cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t"})
	if !client.IsQueueFull(err) {
		t.Fatalf("third submit err = %v, want 429 queue-full", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.QueueDepth != 1 {
		t.Fatalf("429 should carry queue_depth=1, got %+v", ae)
	}

	text, err := cl.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "server_queries_rejected_total 1") {
		t.Fatal("/metrics missing rejected count")
	}

	// Canceling the queued query frees its slot without running it.
	if _, err := cl.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, queued.ID, client.StateCanceled)
	if _, err := cl.Cancel(ctx, running.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, running.ID, client.StateCanceled)
}

// TestConcurrentSubscribersTerminalDelivery exercises the broadcaster
// under -race: many subscribers stream one query's refreshes while a
// second query is canceled mid-segment. Every subscriber must observe
// a gap-free, strictly ordered stream with exactly one terminal event.
func TestConcurrentSubscribersTerminalDelivery(t *testing.T) {
	db := syntheticDB(t)
	_, cl := testServer(t, db, Config{Workers: 2, QueueDepth: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	watched, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t", Name: "watched", PaceMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t", Name: "victim", PaceMS: 20})
	if err != nil {
		t.Fatal(err)
	}

	const subscribers = 8
	type streamResult struct {
		terminals int
		lastState client.State
		err       error
	}
	results := make([]streamResult, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger subscriptions so some replay history and some
			// ride live.
			time.Sleep(time.Duration(i*7) * time.Millisecond)
			lastSeq := 0
			results[i].err = cl.Stream(ctx, watched.ID, func(ev client.ProgressEvent) error {
				if ev.Seq != lastSeq+1 {
					return fmt.Errorf("subscriber %d: seq jumped %d -> %d", i, lastSeq, ev.Seq)
				}
				lastSeq = ev.Seq
				if ev.Terminal() {
					results[i].terminals++
					results[i].lastState = ev.State
				} else if results[i].terminals > 0 {
					return fmt.Errorf("subscriber %d: event after terminal", i)
				}
				return nil
			})
		}(i)
	}

	// Cancel the victim mid-segment while the streams are live.
	waitState(t, cl, victim.ID, client.StateRunning)
	if _, err := cl.Cancel(ctx, victim.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, victim.ID, client.StateCanceled)

	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("subscriber %d: %v", i, r.err)
		}
		if r.terminals != 1 {
			t.Fatalf("subscriber %d saw %d terminal events, want exactly 1", i, r.terminals)
		}
		if r.lastState != client.StateDone {
			t.Fatalf("subscriber %d terminal state = %s, want done", i, r.lastState)
		}
	}
}

// TestResultAndList covers the data path: keep_rows materializes the
// result for fetching, listings carry lifecycle snapshots, and a late
// progress subscriber replays the full history including the terminal
// event.
func TestResultAndList(t *testing.T) {
	db := syntheticDB(t)
	_, cl := testServer(t, db, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sub, err := cl.Submit(ctx, client.SubmitRequest{
		SQL: "select k from t where k < 7", Name: "rows", KeepRows: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	info := waitState(t, cl, sub.ID, client.StateDone)
	if info.RowCount != 7 {
		t.Fatalf("row_count = %d", info.RowCount)
	}

	res, err := cl.Result(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount != 7 || len(res.Rows) != 7 {
		t.Fatalf("result = %+v", res)
	}
	if res.Columns[0] != "t.k" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Rows[3][0].(float64) != 3 { // JSON numbers decode as float64
		t.Fatalf("row 3 = %v", res.Rows[3])
	}
	if res.VirtualSeconds <= 0 {
		t.Fatalf("virtual_seconds = %f", res.VirtualSeconds)
	}

	// Late subscriber: full replay ending in exactly one terminal event.
	var seqs []int
	terminals := 0
	if err := cl.Stream(ctx, sub.ID, func(ev client.ProgressEvent) error {
		seqs = append(seqs, ev.Seq)
		if ev.Terminal() {
			terminals++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if terminals != 1 {
		t.Fatalf("late subscriber saw %d terminals", terminals)
	}
	for i, s := range seqs {
		if s != i+1 {
			t.Fatalf("replay seqs = %v, want 1..n", seqs)
		}
	}

	list, err := cl.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != sub.ID || list[0].State != client.StateDone {
		t.Fatalf("list = %+v", list)
	}

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
}

// TestSubmitValidation covers the failure surface: bad bodies, unknown
// IDs, failing SQL, and result access before completion.
func TestSubmitValidation(t *testing.T) {
	db := syntheticDB(t)
	_, cl := testServer(t, db, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := cl.Submit(ctx, client.SubmitRequest{SQL: "   "}); err == nil {
		t.Fatal("empty sql must 400")
	}
	if _, err := cl.Get(ctx, "nope"); err == nil {
		t.Fatal("unknown id must 404")
	}
	if _, err := cl.Result(ctx, "nope"); err == nil {
		t.Fatal("unknown result must 404")
	}

	// A query that fails at plan time transitions to failed and keeps
	// its error.
	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from missing"})
	if err != nil {
		t.Fatal(err)
	}
	info := waitState(t, cl, sub.ID, client.StateFailed)
	if info.Error == "" {
		t.Fatal("failed query should carry its error")
	}
	if _, err := cl.Result(ctx, sub.ID); err == nil {
		t.Fatal("failed query has no result")
	}
	text, err := cl.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "server_queries_failed_total 1") {
		t.Fatal("/metrics missing failed count")
	}
}

// TestCancelIdempotent: canceling twice (and canceling a done query) is
// safe and does not duplicate terminal events or metrics.
func TestCancelIdempotent(t *testing.T) {
	db := syntheticDB(t)
	_, cl := testServer(t, db, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t", PaceMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, sub.ID, client.StateRunning)
	for i := 0; i < 3; i++ {
		if _, err := cl.Cancel(ctx, sub.ID); err != nil {
			t.Fatal(err)
		}
	}
	waitState(t, cl, sub.ID, client.StateCanceled)
	if _, err := cl.Cancel(ctx, sub.ID); err != nil {
		t.Fatal(err) // canceling a terminal query is a no-op, not an error
	}

	text, err := cl.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "server_queries_canceled_total 1") {
		t.Fatalf("cancellation should count once:\n%s", text)
	}

	terminals := 0
	if err := cl.Stream(ctx, sub.ID, func(ev client.ProgressEvent) error {
		if ev.Terminal() {
			terminals++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if terminals != 1 {
		t.Fatalf("history holds %d terminal events, want 1", terminals)
	}
}

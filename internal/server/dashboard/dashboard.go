// Package dashboard embeds progressd's web UI: a single self-contained
// HTML page (no external assets, no build step, no third-party
// JavaScript) served at /. It renders live per-query progress bars from
// the same SSE wire format the Go client consumes, metric sparklines
// from /api/timeseries, and completed-query drill-downs from
// /api/history — the paper's Figure 2 indicator, on a web page instead
// of a terminal.
//
// Embedding the page keeps the daemon a single static binary: `go build`
// is the whole deployment story, and the dashboard can never be
// version-skewed against the API it talks to.
package dashboard

import (
	"embed"
	"net/http"
)

//go:embed index.html
var content embed.FS

// Handler serves the embedded dashboard page.
func Handler() http.Handler {
	page, err := content.ReadFile("index.html")
	if err != nil {
		//lint:ignore errwrap go:embed guarantees the file compiled in; a read failure is a build-system invariant violation, not a runtime condition
		panic(err)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Header().Set("Cache-Control", "no-cache")
		w.Write(page)
	})
}

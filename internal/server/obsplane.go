// Observability plane: the wall-clock sampler feeding the in-process
// timeseries store, per-query engine-counter attribution, terminal
// profile capture into the history store, and the /api handlers the
// embedded dashboard consumes.
package server

import (
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	rtmetrics "runtime/metrics"
	"strconv"
	"strings"
	"time"

	"progressdb/client"
	"progressdb/internal/obs"
	"progressdb/internal/obs/tsdb"
	"progressdb/internal/server/history"
)

// dashboardSeries are the series IDs the embedded dashboard's sparkline
// panel plots by default. Every entry goes through tsdb.Ref so the
// obsnames analyzer cross-checks it against the module's actual metric
// registrations — a typo here fails lint, not silently renders an empty
// chart.
var dashboardSeries = []string{
	tsdb.Ref("server_queue_depth"),
	tsdb.Ref("server_queries_running"),
	tsdb.Ref("server_sse_subscribers"),
	tsdb.Ref("server_queries_admitted_total"),
	tsdb.Ref("server_queries_rejected_total"),
	tsdb.Ref("server_inflight_u"),
	tsdb.Ref("server_inflight_queries"),
	tsdb.Ref("server_u_per_wall_second"),
	tsdb.Ref("server_progress_events_total"),
	tsdb.Ref("server_query_wall_seconds_count"),
	tsdb.Ref("engine_queries_total"),
	tsdb.Ref("bufferpool_hits_total"),
	tsdb.Ref("bufferpool_misses_total"),
	tsdb.Ref("disk_seq_reads_total"),
	tsdb.Ref("vclock_seconds"),
}

// fleetSeries extend the sparkline list when the server fronts a fleet:
// the coordinator's own instruments (the engine series above live on
// per-shard registries and are not sampled fleet-wide).
var fleetSeries = []string{
	tsdb.Ref("fleet_queries_total"),
	tsdb.Ref("fleet_subqueries_total"),
	tsdb.Ref("fleet_rows_merged_total"),
	tsdb.Ref("fleet_progress_events_total"),
	tsdb.Ref("fleet_queries_failed_total"),
	tsdb.Ref("fleet_cancels_propagated_total"),
	tsdb.Ref("fleet_retries_total"),
	tsdb.Ref("fleet_breaker_trips_total"),
	tsdb.Ref("fleet_breaker_fast_fails_total"),
}

// fleetShardPercentSeries is the series-ID stem of the per-shard
// progress gauges the dashboard's heatmap reads; the full IDs are
// fleet_shard_percent{shard="0"} … {shard="N-1"}.
var fleetShardPercentSeries = tsdb.Ref("fleet_shard_percent")

// profileCounters are the engine counter families whose per-query deltas
// are attached to history profiles. The engine semaphore is held for the
// whole execution, so post-minus-pre deltas are exactly one query's
// doing. Ref-checked like the dashboard list.
var profileCounters = map[string]bool{
	tsdb.Ref("bufferpool_hits_total"):              true,
	tsdb.Ref("bufferpool_misses_total"):            true,
	tsdb.Ref("bufferpool_evictions_total"):         true,
	tsdb.Ref("bufferpool_dirty_writebacks_total"):  true,
	tsdb.Ref("disk_seq_reads_total"):               true,
	tsdb.Ref("disk_rand_reads_total"):              true,
	tsdb.Ref("disk_seq_writes_total"):              true,
	tsdb.Ref("disk_rand_writes_total"):             true,
	tsdb.Ref("storage_io_retries_total"):           true,
	tsdb.Ref("storage_io_retry_giveups_total"):     true,
	tsdb.Ref("faultinject_read_faults_total"):      true,
	tsdb.Ref("faultinject_write_faults_total"):     true,
	tsdb.Ref("faultinject_transient_faults_total"): true,
	tsdb.Ref("faultinject_latency_events_total"):   true,
	tsdb.Ref("faultinject_panics_total"):           true,
	tsdb.Ref("indicator_refreshes_total"):          true,
	tsdb.Ref("indicator_segments_completed_total"): true,
	tsdb.Ref("indicator_dominant_switches_total"):  true,
	tsdb.Ref("exec_rows_out_total"):                true,
}

// ---- sampler ---------------------------------------------------------

// sampler is the daemon-mode timeseries feed: every SampleInterval it
// snapshots the instruments and records one point per series, stamped
// with wall-clock time. Tests run with SampleInterval < 0 and drive
// sampleOnce directly with virtual timestamps instead.
func (s *Server) sampler() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SampleInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sampleOnce(float64(time.Now().UnixNano()) / 1e9)
		case <-s.quit:
			return
		}
	}
}

// sampleOnce records one sampler pass at time now (seconds). When the
// engine is idle it is snapshotted in full — virtual-clock gauges synced
// — exactly like /metrics; while a query holds the engine only the
// registry's atomic instruments are read, so sampling never blocks on
// (or races with) execution.
func (s *Server) sampleOnce(now float64) {
	var samples []obs.Sample
	select {
	case s.engine <- struct{}{}:
		samples = s.eng.Metrics()
		<-s.engine
		if !s.met.shared {
			samples = append(s.met.reg.Snapshot(), samples...)
		}
	default:
		samples = s.met.reg.Snapshot()
	}
	s.ts.Record(now, samples)
	s.lastSample.Store(math.Float64bits(now))
	s.met.samples.Inc()
}

// sampleNow returns the most recent sample timestamp (0 before the first
// pass) — the /api/timeseries notion of "now".
func (s *Server) sampleNow() float64 {
	return math.Float64frombits(s.lastSample.Load())
}

// ---- per-query counter attribution -----------------------------------

// counterBaseline snapshots the profile-relevant counters by series ID.
// A nil registry (engine metrics off) yields an empty baseline and thus
// profiles without counters.
func counterBaseline(reg *obs.Registry) map[string]float64 {
	out := make(map[string]float64)
	for _, sm := range reg.Snapshot() {
		if sm.Kind == obs.KindCounter && profileCounters[sm.Name] {
			out[sm.ID()] = sm.Value
		}
	}
	return out
}

// counterDeltas returns the counters that moved since before, keyed by
// series ID. Nil when nothing moved (the common fault-free case keeps
// profiles small).
func counterDeltas(before map[string]float64, reg *obs.Registry) map[string]float64 {
	var out map[string]float64
	for _, sm := range reg.Snapshot() {
		if sm.Kind != obs.KindCounter || !profileCounters[sm.Name] {
			continue
		}
		if d := sm.Value - before[sm.ID()]; d > 0 {
			if out == nil {
				out = make(map[string]float64)
			}
			out[sm.ID()] = d
		}
	}
	return out
}

// retire captures a freshly terminal job's profile into the history
// store. Callers invoke it exactly once per job, right after the
// finish() call that performed the terminal transition returned true.
func (s *Server) retire(j *job) {
	s.hist.Add(j.profile())
	s.met.profiles.Inc()
	s.met.retained.Set(float64(s.hist.Len()))
	s.adm.remove(j.id)
	s.syncAdmissionGauges()
}

// ---- /api handlers ---------------------------------------------------

func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	window := 300.0
	if v := q.Get("window"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			writeErr(w, http.StatusBadRequest, "window must be a positive number of seconds")
			return
		}
		window = f
	}
	points := 120
	if v := q.Get("points"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, "points must be a positive integer")
			return
		}
		points = n
	}
	var names []string
	if v := q.Get("metrics"); v != "" {
		for _, m := range strings.Split(v, ",") {
			if m = strings.TrimSpace(m); m != "" {
				names = append(names, m)
			}
		}
	}

	now := s.sampleNow()
	series := s.ts.Query(names, now-window, now, points)
	resp := client.TimeseriesResponse{
		Now:           now,
		WindowSeconds: window,
		Series:        make([]client.TimeseriesSeries, 0, len(series)),
	}
	if s.cfg.SampleInterval > 0 {
		resp.SampleIntervalMS = int(s.cfg.SampleInterval / time.Millisecond)
	}
	for _, sr := range series {
		ts := client.TimeseriesSeries{
			Name:   sr.Name,
			Kind:   string(sr.Kind),
			Help:   sr.Help,
			Points: make([]client.TSPoint, 0, len(sr.Points)),
		}
		for _, p := range sr.Points {
			ts.Points = append(ts.Points, client.TSPoint{T: p.T, V: p.V})
		}
		resp.Series = append(resp.Series, ts)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHistoryList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sortBy := q.Get("sort")
	switch sortBy {
	case "", history.SortFinished, history.SortDuration, history.SortQError:
	default:
		writeErr(w, http.StatusBadRequest, "sort must be one of finished, duration, qerror")
		return
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, client.HistoryResponse{
		Capacity: s.hist.Capacity(),
		Retained: s.hist.Len(),
		Profiles: s.hist.List(sortBy, limit),
	})
}

func (s *Server) handleHistoryGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	p, ok := s.hist.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no retained profile for query %q", id)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) handleDashboardConfig(w http.ResponseWriter, r *http.Request) {
	cfg := client.DashboardConfig{
		SparklineSeries: dashboardSeries,
		HistoryCapacity: s.hist.Capacity(),
		Shards:          s.eng.Shards(),
	}
	if cfg.Shards > 1 {
		// Fleet mode: engine-internal series live on per-shard registries
		// and are not sampled fleet-wide — plot the server series plus the
		// coordinator's fleet instruments instead.
		var series []string
		for _, name := range dashboardSeries {
			if strings.HasPrefix(name, "server_") {
				series = append(series, name)
			}
		}
		cfg.SparklineSeries = append(series, fleetSeries...)
	}
	if s.cfg.SampleInterval > 0 {
		cfg.SampleIntervalMS = int(s.cfg.SampleInterval / time.Millisecond)
	}
	if s.cfg.KeepAlive > 0 {
		cfg.KeepAliveMS = int(s.cfg.KeepAlive / time.Millisecond)
	}
	writeJSON(w, http.StatusOK, cfg)
}

// ---- debug surface ---------------------------------------------------

// DebugHandler returns the process-introspection surface progressd
// mounts on its -debug-addr listener: net/http/pprof under /debug/pprof/
// and a JSON dump of runtime/metrics at /debug/runtime. It is a separate
// handler (not part of the query API mux) so operators can keep it on a
// loopback-only port.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime", handleRuntimeMetrics)
	return mux
}

// handleRuntimeMetrics dumps every scalar runtime/metrics sample as a
// JSON object (histogram-kinded metrics are summarized by their bucket
// count total — the full distributions belong to pprof).
func handleRuntimeMetrics(w http.ResponseWriter, r *http.Request) {
	descs := rtmetrics.All()
	samples := make([]rtmetrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	rtmetrics.Read(samples)
	out := make(map[string]interface{}, len(samples))
	for _, sm := range samples {
		switch sm.Value.Kind() {
		case rtmetrics.KindUint64:
			out[sm.Name] = sm.Value.Uint64()
		case rtmetrics.KindFloat64:
			out[sm.Name] = sm.Value.Float64()
		case rtmetrics.KindFloat64Histogram:
			var total uint64
			for _, c := range sm.Value.Float64Histogram().Counts {
				total += c
			}
			out[sm.Name] = fmt.Sprintf("histogram(%d samples)", total)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"progressdb/client"
)

// chokeTransport wraps the server handler and violently closes the first
// progress-stream connection after a fixed number of SSE events have
// been flushed — the network fault the client's reconnect-with-resume
// path exists for.
type chokeTransport struct {
	inner      http.Handler
	mu         sync.Mutex
	killed     bool
	afterBytes int
}

func (c *chokeTransport) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasSuffix(r.URL.Path, "/progress") {
		c.inner.ServeHTTP(w, r)
		return
	}
	c.mu.Lock()
	alreadyKilled := c.killed
	c.killed = true
	c.mu.Unlock()
	if alreadyKilled {
		// Later connections (the resume) pass through untouched.
		c.inner.ServeHTTP(w, r)
		return
	}
	c.inner.ServeHTTP(&chokingWriter{ResponseWriter: w, budget: c.afterBytes}, r)
}

// chokingWriter aborts the connection once budget bytes have been
// written. http.ErrAbortHandler makes net/http sever the TCP connection
// without a graceful close, so the client sees a mid-stream drop.
type chokingWriter struct {
	http.ResponseWriter
	written int
	budget  int
}

func (cw *chokingWriter) Write(p []byte) (int, error) {
	if cw.written >= cw.budget {
		panic(http.ErrAbortHandler)
	}
	cw.written += len(p)
	return cw.ResponseWriter.Write(p)
}

func (cw *chokingWriter) Flush() {
	if fl, ok := cw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// TestStreamResumeAfterDrop kills the SSE connection mid-query and
// verifies the client transparently reconnects with Last-Event-ID: the
// callback sees every event exactly once, in order, with no duplicates,
// no gaps, and exactly one terminal event.
func TestStreamResumeAfterDrop(t *testing.T) {
	db := syntheticDB(t)
	s := New(db, Config{Workers: 1, QueueDepth: 4, SampleInterval: -1})
	choke := &chokeTransport{inner: s.Handler(), afterBytes: 600}
	ts := httptest.NewServer(choke)
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	cl := client.New(ts.URL)

	ctx := context.Background()
	// Paced so the query is still running when the first connection dies.
	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t", PaceMS: 5})
	if err != nil {
		t.Fatal(err)
	}

	var seqs []int
	terminals := 0
	err = cl.Stream(ctx, sub.ID, func(ev client.ProgressEvent) error {
		seqs = append(seqs, ev.Seq)
		if ev.Terminal() {
			terminals++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stream did not survive the drop: %v", err)
	}

	choke.mu.Lock()
	killed := choke.killed
	choke.mu.Unlock()
	if !killed {
		t.Fatal("test harness never killed a connection — nothing was exercised")
	}
	if len(seqs) < 3 {
		t.Fatalf("only %d events delivered", len(seqs))
	}
	for i, seq := range seqs {
		if seq != i+1 {
			t.Fatalf("event %d has seq %d — duplicates or gaps across the reconnect (all: %v)", i, seq, seqs)
		}
	}
	if terminals != 1 {
		t.Fatalf("%d terminal events, want exactly 1", terminals)
	}
	info, err := cl.Get(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != client.StateDone {
		t.Fatalf("query ended %s: %s", info.State, info.Error)
	}
}

// TestStreamResumeFiltersReplay checks the server side in isolation: a
// raw request with Last-Event-ID must replay only events after it.
func TestStreamResumeFiltersReplay(t *testing.T) {
	db := syntheticDB(t)
	_, cl := testServer(t, db, Config{Workers: 1, QueueDepth: 4, SampleInterval: -1})
	ctx := context.Background()

	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select count(*) from t"})
	if err != nil {
		t.Fatal(err)
	}
	// Run to completion so the full history is known.
	total := 0
	if err := cl.Stream(ctx, sub.ID, func(ev client.ProgressEvent) error {
		total = ev.Seq
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total < 2 {
		t.Skipf("query took only %d events; nothing to filter", total)
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.BaseURL()+"/queries/"+sub.ID+"/progress", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if strings.Contains(body, "id: 1\n") {
		t.Fatal("replay included event 1 despite Last-Event-ID: 1")
	}
	if !strings.Contains(body, "id: 2\n") {
		t.Fatalf("replay missing event 2:\n%s", body)
	}

	// A malformed Last-Event-ID is rejected, not ignored.
	req2, _ := http.NewRequestWithContext(ctx, http.MethodGet, cl.BaseURL()+"/queries/"+sub.ID+"/progress", nil)
	req2.Header.Set("Last-Event-ID", "bogus")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus Last-Event-ID got status %d, want 400", resp2.StatusCode)
	}
}

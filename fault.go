package progressdb

import (
	"context"
	"fmt"
	"time"

	"progressdb/internal/faultinject"
	"progressdb/internal/storage"
)

// This file is the engine's failure-model surface: fault injection for
// chaos testing, per-query deadlines, and the resource-leak checks that
// the randomized fault-schedule suite asserts after every failed query.

// SetFaultSpec installs (or, with an empty spec, removes) a storage
// fault injector. The spec grammar is internal/faultinject's compact
// form, e.g.
//
//	seed=7,readerr=0.01,writeerr=0.02,transient=0.5,latency=0.1:0.005,target=temp
//
// Faults injected under a running query surface through the normal
// error path: transient errors may be absorbed by the buffer pool's
// bounded retry, permanent errors fail the query (cleanly — see
// CheckLeaks), and injected panics are converted to *exec.InternalError
// at the engine boundary. When Config.Metrics is on, injector activity
// is exported as the faultinject_* series.
func (db *DB) SetFaultSpec(spec string) error {
	cfg, err := faultinject.Parse(spec)
	if err != nil {
		return err
	}
	disk := db.cat.Pool().Disk()
	if cfg == (faultinject.Config{}) {
		db.inj = nil
		disk.SetFaultInjector(nil)
		return nil
	}
	in := faultinject.New(cfg)
	in.SetMetrics(faultinject.NewMetrics(db.reg))
	db.inj = in
	disk.SetFaultInjector(in)
	return nil
}

// FaultStats reports what the installed fault injector has done (the
// zero value when no injector is installed).
type FaultStats struct {
	// Reads and Writes count targeted physical page accesses inspected.
	Reads, Writes int64
	// ReadFaults and WriteFaults count injected I/O errors by direction.
	ReadFaults, WriteFaults int64
	// TransientFaults is how many injected errors were retryable.
	TransientFaults int64
	// LatencyEvents counts accesses stretched with injected latency.
	LatencyEvents int64
	// Panics counts injected executor crashes.
	Panics int64
}

// FaultStats snapshots the installed injector's accounting.
func (db *DB) FaultStats() FaultStats {
	if db.inj == nil {
		return FaultStats{}
	}
	s := db.inj.Stats()
	return FaultStats{
		Reads: s.Reads, Writes: s.Writes,
		ReadFaults: s.ReadFaults, WriteFaults: s.WriteFaults,
		TransientFaults: s.TransientFaults,
		LatencyEvents:   s.LatencyEvents,
		Panics:          s.Panics,
	}
}

// CheckLeaks verifies the engine's cleanup invariants between queries:
// no temp/spill files are left on the simulated disk and the buffer
// pool holds no pages of removed files. It is meant to be called when
// no query is executing — the chaos suite calls it after every
// schedule, including ones that ended in injected errors, panics, or
// cancellation.
func (db *DB) CheckLeaks() error {
	pool := db.cat.Pool()
	if temps := pool.Disk().OpenFilesOfClass(storage.ClassTemp); len(temps) > 0 {
		return fmt.Errorf("progressdb: %d temp file(s) leaked: %v", len(temps), temps)
	}
	if orphans := pool.OrphanedPages(); len(orphans) > 0 {
		return fmt.Errorf("progressdb: buffer pool holds %d page(s) of removed files: %v",
			len(orphans), orphans)
	}
	if pins := pool.PinnedFrames(); pins != 0 {
		return fmt.Errorf("progressdb: buffer pool holds %d leaked frame pin(s)", pins)
	}
	return nil
}

// queryCtx applies Config.QueryTimeoutSeconds: when set, every query
// runs under a wall-clock deadline and fails with an error satisfying
// errors.Is(err, context.DeadlineExceeded) once it expires, unwinding
// through the executor's cancellation safe points like a user cancel.
func (db *DB) queryCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if db.cfg.QueryTimeoutSeconds <= 0 {
		return ctx, func() {}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	d := time.Duration(db.cfg.QueryTimeoutSeconds * float64(time.Second))
	return context.WithTimeout(ctx, d)
}

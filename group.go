package progressdb

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"

	"progressdb/internal/core"
	"progressdb/internal/exec"
	"progressdb/internal/segment"
	"progressdb/internal/tuple"
)

// GroupQuery is one member of a concurrently executing query group.
type GroupQuery struct {
	// Name labels the query in progress reports.
	Name string
	// SQL is the query text.
	SQL string
	// StartAt delays the query's start by this many virtual seconds
	// after the group begins (0 = immediately), modeling queries that
	// arrive while others run.
	StartAt float64
	// KeepRows materializes the result rows (off by default: concurrent
	// groups are usually about timing, not data).
	KeepRows bool
	// OnProgress receives this query's indicator refreshes. Callbacks
	// may fire from any of the group's workers; do not assume goroutine
	// affinity.
	OnProgress func(Report)
	// Ctx, when non-nil, cancels this member at the executor's safe
	// points without disturbing the rest of the group: the member
	// unwinds, reports a canceled error in GroupError.Errs, and the
	// scheduler keeps interleaving the survivors.
	Ctx context.Context
}

// GroupError aggregates per-member failures of ExecGroup. Healthy
// members still complete and return results; each failed member's slot
// carries its own error (nil for members that succeeded).
type GroupError struct {
	// Errs has one entry per input query, aligned with the queries and
	// results slices; nil entries succeeded.
	Errs []error
}

// Error lists the failing members.
func (e *GroupError) Error() string {
	var parts []string
	for _, err := range e.Errs {
		if err != nil {
			parts = append(parts, err.Error())
		}
	}
	return "progressdb: group: " + strings.Join(parts, "; ")
}

// Unwrap returns the non-nil member errors so errors.Is/As traverse
// them (Go 1.20 multi-error unwrapping).
func (e *GroupError) Unwrap() []error {
	var errs []error
	for _, err := range e.Errs {
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// sliceTuples is how many tuples one query processes before yielding to
// the next — the scheduler's time slice.
const sliceTuples = 128

// groupWorker is one query's execution state within a group.
type groupWorker struct {
	q        GroupQuery
	token    chan struct{}
	finished bool
	err      error
	result   *Result
}

// ExecGroup runs several queries concurrently on this engine: a
// deterministic round-robin scheduler interleaves them tuple-slice by
// tuple-slice on the shared virtual clock, so they genuinely contend —
// each query's progress indicator observes a slowdown when another query
// runs, with no synthetic interference needed. This reproduces the
// paper's Section 6 load-management setting: a pool of running queries,
// each with its own indicator.
//
// Results are returned in input order. A member's failure (or
// cancellation through GroupQuery.Ctx) does not abort the group:
// healthy members run to completion and return results, and the error
// is a *GroupError whose Errs slice aligns with the input — the
// multi-tenant server semantics, where one tenant's bad query must not
// take down its neighbors. Failed members' result slots are nil.
func (db *DB) ExecGroup(queries []GroupQuery) ([]*Result, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	workers := make([]*groupWorker, len(queries))
	for i, q := range queries {
		workers[i] = &groupWorker{q: q, token: make(chan struct{}, 1)}
	}
	groupStart := db.clock.Now()
	done := make(chan int, len(queries))

	// next passes the token to the next unfinished worker after i;
	// called only while holding the token.
	next := func(i int) {
		for k := 1; k <= len(workers); k++ {
			w := workers[(i+k)%len(workers)]
			if !w.finished {
				w.token <- struct{}{}
				return
			}
		}
	}
	// earliestPendingStart finds when the next not-yet-started query is
	// due; the token holder idles the clock to it when nothing else can
	// run.
	earliestPendingStart := func() float64 {
		earliest := -1.0
		for _, w := range workers {
			if w.finished {
				continue
			}
			at := groupStart + w.q.StartAt
			if earliest < 0 || at < earliest {
				earliest = at
			}
		}
		return earliest
	}
	anyRunnableNow := func() bool {
		for _, w := range workers {
			if !w.finished && db.clock.Now() >= groupStart+w.q.StartAt {
				return true
			}
		}
		return false
	}

	for i, w := range workers {
		go func(i int, w *groupWorker) {
			defer func() { done <- i }()
			myStart := groupStart + w.q.StartAt

			// Gate on the start time: pass the token along while other
			// queries run; idle the clock when nothing else can.
			<-w.token
			for db.clock.Now() < myStart {
				if anyRunnableNow() {
					next(i)
					<-w.token
					continue
				}
				if at := earliestPendingStart(); at > db.clock.Now() {
					db.clock.Idle(at - db.clock.Now())
				}
			}

			steps := 0
			yield := func() {
				steps++
				if steps >= sliceTuples {
					steps = 0
					next(i)
					<-w.token
				}
			}
			w.result, w.err = db.execOne(w.q, yield)
			w.finished = true
			next(i)
		}(i, w)
	}
	workers[0].token <- struct{}{}

	for range workers {
		<-done
	}
	// The group ran on the engine's base clock; publish its end time into
	// the clock group so later queries start after it.
	db.clock.Sync()
	results := make([]*Result, len(workers))
	var ge *GroupError
	for i, w := range workers {
		if w.err != nil {
			if ge == nil {
				ge = &GroupError{Errs: make([]error, len(workers))}
			}
			ge.Errs[i] = fmt.Errorf("progressdb: group query %q: %w", w.q.Name, w.err)
			continue
		}
		results[i] = w.result
	}
	if ge != nil {
		return results, ge
	}
	return results, nil
}

// execOne plans and runs one group member with its own indicator. Like
// db.run it is a panic boundary: a crash (e.g. an injected fault) fails
// only this member — converted to *exec.InternalError — and the
// member's temp files are reclaimed, so the rest of the group keeps
// running. Config.QueryTimeoutSeconds applies per member, layered on
// the member's own Ctx.
func (db *DB) execOne(q GroupQuery, yield func()) (res *Result, err error) {
	var env *exec.Env
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, exec.NewInternalError(r, debug.Stack())
		}
		if err != nil && env != nil {
			env.ReleaseScans()
			env.ReclaimTemps()
		}
	}()
	p, err := db.plan(q.SQL)
	if err != nil {
		return nil, err
	}
	d := segment.Decompose(p, db.cfg.WorkMemPages)
	ind := core.New(db.clock, d, core.Options{
		UpdatePeriod:    db.cfg.ProgressUpdateSeconds,
		SpeedWindow:     db.cfg.SpeedWindowSeconds,
		DecayAlpha:      db.cfg.SpeedDecayAlpha,
		PerSegmentSpeed: db.cfg.PerSegmentSpeed,
		Refine:          db.refine,
	})
	if q.OnProgress != nil {
		ind.Subscribe(func(s core.Snapshot) { q.OnProgress(toReport(s)) })
	}
	ind.Start()
	defer ind.Stop()

	res = &Result{}
	for _, c := range p.Schema().Cols {
		res.Columns = append(res.Columns, c.Name)
	}
	env = &exec.Env{
		Pool:         db.cat.Pool(),
		Clock:        db.clock,
		WorkMemPages: db.cfg.WorkMemPages,
		Reporter:     ind,
		Decomp:       d,
		Met:          db.execMet,
		Yield:        yield,
	}
	ctx, cancel := db.queryCtx(q.Ctx)
	defer cancel()
	if ctx != nil && ctx.Done() != nil {
		env.Ctx = ctx
	}
	start := db.clock.Now()
	var sink func(tuple.Tuple) error
	if q.KeepRows {
		sink = func(t tuple.Tuple) error {
			res.Rows = append(res.Rows, tupleToRow(t))
			return nil
		}
	}
	if _, err := exec.Run(env, p, sink); err != nil {
		return nil, err
	}
	db.queries.Inc()
	res.VirtualSeconds = db.clock.Now() - start
	for _, s := range ind.Snapshots() {
		res.History = append(res.History, toReport(s))
	}
	return res, nil
}

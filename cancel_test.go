package progressdb

import (
	"context"
	"errors"
	"strings"
	"testing"

	"progressdb/internal/exec"
)

// cancelDB builds an I/O-bound table big enough that a scan spans many
// progress refreshes.
func cancelDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Config{
		ProgressUpdateSeconds: 0.5,
		SpeedWindowSeconds:    1,
		SeqPageCost:           0.01,
		RandPageCost:          0.08,
		BufferPoolPages:       64,
	})
	db.MustCreateTable("big", Col("k", Int), Col("pad", Text))
	pad := strings.Repeat("x", 100)
	for i := 0; i < 20000; i++ {
		db.MustInsert("big", int64(i), pad)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	if err := db.ColdRestart(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExecContextCancelMidQuery(t *testing.T) {
	db := cancelDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	reports := 0
	_, err := db.ExecContext(ctx, "select * from big", func(r Report) {
		reports++
		if reports == 2 {
			cancel() // pull the plug mid-segment
		}
	})
	if err == nil {
		t.Fatal("canceled query returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(context.Canceled)", err)
	}
	var ce *exec.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *exec.CanceledError", err, err)
	}
	if reports < 2 {
		t.Fatalf("only %d progress reports before cancel", reports)
	}

	// The engine must stay usable after the unwind.
	res, err := db.Exec("select * from big where k < 10", nil)
	if err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
	if res.RowCount() != 10 {
		t.Fatalf("rows after cancel = %d", res.RowCount())
	}
}

func TestExecContextPreCanceled(t *testing.T) {
	db := cancelDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.ExecContext(ctx, "select * from big", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestExecContextUncanceledCompletes(t *testing.T) {
	db := cancelDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := db.ExecContext(ctx, "select * from big where k < 100", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount() != 100 {
		t.Fatalf("rows = %d", res.RowCount())
	}
	// Background contexts never even install the check.
	if _, err := db.ExecContext(context.Background(), "select * from big where k < 5", nil); err != nil {
		t.Fatal(err)
	}
}

// spillDB is cancelDB with a tiny work_mem so sorts and hash joins
// spill to temp files, plus a second join table.
func spillDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Config{
		ProgressUpdateSeconds: 0.2,
		SpeedWindowSeconds:    1,
		SeqPageCost:           0.01,
		RandPageCost:          0.08,
		BufferPoolPages:       64,
		WorkMemPages:          2,
	})
	pad := strings.Repeat("x", 100)
	for _, tbl := range []string{"big", "big2"} {
		db.MustCreateTable(tbl, Col("k", Int), Col("pad", Text))
		for i := 0; i < 12000; i++ {
			db.MustInsert(tbl, int64(i), pad)
		}
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	if err := db.ColdRestart(); err != nil {
		t.Fatal(err)
	}
	return db
}

// testCancelMidSpill cancels sql mid-execution (while its spilling
// operators hold temp files on disk), then asserts the unwind released
// every temp file and buffer page and left the engine reusable.
func testCancelMidSpill(t *testing.T, sql string) {
	t.Helper()
	db := spillDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	reports := 0
	_, err := db.ExecDiscardContext(ctx, sql, func(r Report) {
		reports++
		if reports == 2 {
			cancel() // mid-run: spilled runs/partitions are live on disk
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(context.Canceled)", err)
	}
	if err := db.CheckLeaks(); err != nil {
		t.Fatalf("after cancel: %v", err)
	}

	// The engine must stay usable, and a full run of the same spilling
	// query must also clean up after itself.
	if _, err := db.ExecDiscard(sql, nil); err != nil {
		t.Fatalf("rerun after cancel: %v", err)
	}
	if err := db.CheckLeaks(); err != nil {
		t.Fatalf("after completed rerun: %v", err)
	}
}

func TestCancelMidExternalSort(t *testing.T) {
	testCancelMidSpill(t, "select * from big order by pad desc, k desc")
}

func TestCancelMidSpilledHashJoin(t *testing.T) {
	testCancelMidSpill(t, "select * from big b1, big2 b2 where b1.k = b2.k and b2.k < 4000")
}

func TestCancelMidSortedJoin(t *testing.T) {
	// Sort feeding a join: cancel while multiple operators hold spills.
	testCancelMidSpill(t, "select * from big b1, big2 b2 where b1.k = b2.k order by b1.pad desc, b2.k")
}

func TestExecGroupMemberCancel(t *testing.T) {
	db := cancelDB(t)
	db.MustCreateTable("big2", Col("k", Int), Col("pad", Text))
	pad := strings.Repeat("x", 100)
	for i := 0; i < 20000; i++ {
		db.MustInsert("big2", int64(i), pad)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reports := 0
	results, err := db.ExecGroup([]GroupQuery{
		{Name: "survivor", SQL: "select * from big where k < 500", KeepRows: true},
		{Name: "victim", SQL: "select * from big2", Ctx: ctx, OnProgress: func(r Report) {
			reports++
			if reports == 2 {
				cancel()
			}
		}},
	})
	var ge *GroupError
	if !errors.As(err, &ge) {
		t.Fatalf("err = %T %v, want *GroupError", err, err)
	}
	if ge.Errs[0] != nil {
		t.Fatalf("survivor errored: %v", ge.Errs[0])
	}
	if !errors.Is(ge.Errs[1], context.Canceled) {
		t.Fatalf("victim err = %v, want context.Canceled", ge.Errs[1])
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("group err should unwrap to context.Canceled, got %v", err)
	}
	if results[0] == nil || results[0].RowCount() != 500 {
		t.Fatalf("survivor result = %+v, want 500 rows", results[0])
	}
	if results[1] != nil {
		t.Fatal("victim should have a nil result slot")
	}
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation section. Each bench runs the full scenario (generate data,
// plan, execute with the progress indicator) once per iteration and
// reports the reproduction metrics alongside wall time:
//
//	est0_U    the optimizer's initial cost estimate (U)
//	exact_U   the true query cost (U)
//	vdur_s    the query's virtual duration (seconds)
//	mae_s     mean |estimated − actual| remaining time after warm-up
//
// Run with: go test -bench=. -benchmem
package progressdb

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"progressdb/internal/core"
	"progressdb/internal/harness"
)

const benchScale = 0.01

func benchFigure(b *testing.B, id string) {
	e, ok := harness.ExperimentByID(id)
	if !ok {
		b.Fatalf("no experiment %s", id)
	}
	runner := harness.Runner{Scale: benchScale, Seed: 1}
	var res *harness.RunResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = runner.Run(e.Query, e.Interf)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRun(b, res)
}

func reportRun(b *testing.B, res *harness.RunResult) {
	b.Helper()
	b.ReportMetric(res.InitialEstU, "est0_U")
	b.ReportMetric(res.ExactCostU, "exact_U")
	b.ReportMetric(res.ActualSeconds, "vdur_s")
	var mae float64
	n := 0
	for _, s := range res.Snapshots {
		if s.Elapsed < 20 || s.Finished {
			continue
		}
		mae += math.Abs(s.RemainingSeconds - (res.ActualSeconds - s.Elapsed))
		n++
	}
	if n > 0 {
		b.ReportMetric(mae/float64(n), "mae_s")
	}
}

// BenchmarkTable1DataSet regenerates the paper's Table 1 data set.
func BenchmarkTable1DataSet(b *testing.B) {
	runner := harness.Runner{Scale: benchScale, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := runner.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// Figures 4–7: Q1 on an unloaded system.
func BenchmarkFig04Q1Cost(b *testing.B)      { benchFigure(b, "fig04") }
func BenchmarkFig05Q1Speed(b *testing.B)     { benchFigure(b, "fig05") }
func BenchmarkFig06Q1Remaining(b *testing.B) { benchFigure(b, "fig06") }
func BenchmarkFig07Q1Percent(b *testing.B)   { benchFigure(b, "fig07") }

// Figures 9–12: Q2 on an unloaded system.
func BenchmarkFig09Q2Cost(b *testing.B)      { benchFigure(b, "fig09") }
func BenchmarkFig10Q2Speed(b *testing.B)     { benchFigure(b, "fig10") }
func BenchmarkFig11Q2Remaining(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkFig12Q2Percent(b *testing.B)   { benchFigure(b, "fig12") }

// Figures 13–16: Q2 under I/O interference (the file copy).
func BenchmarkFig13Q2CostIO(b *testing.B)      { benchFigure(b, "fig13") }
func BenchmarkFig14Q2SpeedIO(b *testing.B)     { benchFigure(b, "fig14") }
func BenchmarkFig15Q2RemainingIO(b *testing.B) { benchFigure(b, "fig15") }
func BenchmarkFig16Q2PercentIO(b *testing.B)   { benchFigure(b, "fig16") }

// Figure 17: Q3 with correlated orders data.
func BenchmarkFig17Q3Cost(b *testing.B) { benchFigure(b, "fig17") }

// Figure 18: Q4 with misestimates on both joins.
func BenchmarkFig18Q4Cost(b *testing.B) { benchFigure(b, "fig18") }

// Figures 19–20: the CPU-bound Q5, unloaded and under CPU interference.
func BenchmarkFig19Q5Remaining(b *testing.B)    { benchFigure(b, "fig19") }
func BenchmarkFig20Q5RemainingCPU(b *testing.B) { benchFigure(b, "fig20") }

// BenchmarkOverheadOn/Off back the paper's "< 1% penalty on the running
// time of queries" claim: identical Q2 executions with the indicator
// attached and detached. Compare ns/op between the two.
func BenchmarkOverheadOn(b *testing.B) { benchOverhead(b, true) }

func BenchmarkOverheadOff(b *testing.B) { benchOverhead(b, false) }

func benchOverhead(b *testing.B, withIndicator bool) {
	runner := harness.Runner{Scale: benchScale, Seed: 1}
	probe, err := runner.OverheadProbe(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := probe(withIndicator); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtraSMJProgress exercises the sort-merge-join rule (two
// dominant inputs, p = max(qA, qB)) that the paper describes in Section
// 4.5 but left out of its prototype.
func BenchmarkExtraSMJProgress(b *testing.B) {
	runner := harness.Runner{Scale: benchScale, Seed: 1}
	var res *harness.RunResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = runner.RunSMJ()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRun(b, res)
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// reportAblation adds cost- and remaining-time error metrics.
func reportAblation(b *testing.B, res *harness.RunResult) {
	b.Helper()
	var costMAE float64
	n := 0
	for _, s := range res.Snapshots {
		if s.Finished {
			continue
		}
		costMAE += math.Abs(s.EstTotalU - res.ExactCostU)
		n++
	}
	if n > 0 {
		b.ReportMetric(costMAE/float64(n), "costmae_U")
	}
	reportRun(b, res)
}

func benchAblation(b *testing.B, r harness.Runner) {
	r.Scale = benchScale
	r.Seed = 1
	var res *harness.RunResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.Run(2, harness.Interference{})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, res)
}

// Section 4.5 blend vs never-refining vs raw extrapolation.
func BenchmarkAblationEstimatorBlend(b *testing.B) {
	benchAblation(b, harness.Runner{Estimator: core.EstimatorBlend})
}

func BenchmarkAblationEstimatorStatic(b *testing.B) {
	benchAblation(b, harness.Runner{Estimator: core.EstimatorStatic})
}

func BenchmarkAblationEstimatorLinear(b *testing.B) {
	benchAblation(b, harness.Runner{Estimator: core.EstimatorLinear})
}

// Section 4.6 speed-window size T (paper: 10 s; too small is jumpy, too
// large lags load changes).
func BenchmarkAblationSpeedWindowT2(b *testing.B) {
	benchAblation(b, harness.Runner{SpeedWindow: 2})
}

func BenchmarkAblationSpeedWindowT10(b *testing.B) {
	benchAblation(b, harness.Runner{SpeedWindow: 10})
}

func BenchmarkAblationSpeedWindowT50(b *testing.B) {
	benchAblation(b, harness.Runner{SpeedWindow: 50})
}

// The paper's two suggested Section 4.6 refinements.
func BenchmarkAblationDecayingAverage(b *testing.B) {
	benchAblation(b, harness.Runner{DecayAlpha: 0.3})
}

func BenchmarkAblationPerSegmentSpeed(b *testing.B) {
	benchAblation(b, harness.Runner{PerSegmentSpeed: true})
}

// BenchmarkExtraConcurrentContention runs two paper queries concurrently
// via the group scheduler — the Section 6 "pool of running queries"
// setting with genuine contention instead of synthetic interference —
// and reports how much the concurrency stretches Q1.
func BenchmarkExtraConcurrentContention(b *testing.B) {
	var stretch float64
	for i := 0; i < b.N; i++ {
		mk := func() *DB {
			db := Open(Config{
				WorkMemPages:    16,
				SeqPageCost:     0.8e-3 / benchScale,
				RandPageCost:    6.4e-3 / benchScale,
				BufferPoolPages: 128,
			})
			if err := db.LoadPaperWorkload(benchScale, false); err != nil {
				b.Fatal(err)
			}
			if err := db.ColdRestart(); err != nil {
				b.Fatal(err)
			}
			return db
		}
		q1, err := PaperQuery(1)
		if err != nil {
			b.Fatal(err)
		}
		q2, err := PaperQuery(2)
		if err != nil {
			b.Fatal(err)
		}
		solo, err := mk().ExecGroup([]GroupQuery{{Name: "q1", SQL: q1}})
		if err != nil {
			b.Fatal(err)
		}
		both, err := mk().ExecGroup([]GroupQuery{
			{Name: "q1", SQL: q1},
			{Name: "q2", SQL: q2},
		})
		if err != nil {
			b.Fatal(err)
		}
		stretch = both[0].VirtualSeconds / solo[0].VirtualSeconds
	}
	b.ReportMetric(stretch, "stretch_x")
}

// BenchmarkConcurrentThroughput is the multi-core lift's headline
// number (the committed BENCH_mt.json baseline): real wall-clock query
// throughput of one shared engine as the worker count grows. Each
// iteration pushes a fixed batch of mixed queries (scans, sorts, joins,
// aggregates — the chaos workload) through W goroutines; queries/s
// should rise with W because workers now genuinely execute in parallel
// on per-query worker clocks.
func BenchmarkConcurrentThroughput(b *testing.B) {
	// A cache-resident workload: the pool holds both tables, work_mem
	// holds every sort and hash table, so after warm-up the queries are
	// pure executor CPU over sharded buffer-pool hits — the part of the
	// engine the multi-core lift parallelizes. (A cold, pool-thrashing
	// workload serializes on the simulated disk by design; and on a
	// single-core host the worker counts necessarily tie.)
	mkdb := func(b *testing.B) *DB {
		db := Open(Config{WorkMemPages: 64, BufferPoolPages: 2048})
		db.MustCreateTable("r", Col("k", Int), Col("v", Int), Col("pad", Text))
		db.MustCreateTable("s", Col("k", Int), Col("v", Int))
		pad := "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"
		for i := 0; i < 8000; i++ {
			db.MustInsert("r", int64(i), int64(i%97), pad)
		}
		for i := 0; i < 6000; i++ {
			db.MustInsert("s", int64(i%8000), int64(i))
		}
		if err := db.Analyze(); err != nil {
			b.Fatal(err)
		}
		return db
	}
	queries := []string{
		"select v, count(*), sum(k) from r group by v order by v",
		"select * from r order by v, k",
		"select r.k, r.v, s.v from r, s where r.k = s.k",
		"select * from r where exists (select * from s where s.k = r.k)",
	}
	const batch = 8 // total queries per iteration, fixed across worker counts
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			db := mkdb(b)
			for _, sql := range queries { // warm the pool
				if _, err := db.ExecDiscard(sql, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for j := w; j < batch; j += workers {
							if _, err := db.ExecDiscard(queries[j%len(queries)], nil); err != nil {
								b.Error(err)
							}
						}
					}(w)
				}
				wg.Wait()
			}
			b.StopTimer()
			if err := db.CheckLeaks(); err != nil {
				b.Fatal(err)
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*batch)/secs, "queries/s")
			}
		})
	}
}

// BenchmarkObsDisabled/Enabled compare the engine-wide observability
// layer off (the default: nil instruments, bare nil checks on the hot
// path) and on (Config.Metrics wires the registry into every layer).
// The comparison backs the paper's "< 1% penalty" budget for statistics
// collection applied to the metrics/tracing subsystem.
func BenchmarkObsDisabled(b *testing.B) {
	benchObsQuery(b, Config{WorkMemPages: 16})
}

func BenchmarkObsEnabled(b *testing.B) {
	benchObsQuery(b, Config{WorkMemPages: 16, Metrics: true})
}

func benchObsQuery(b *testing.B, cfg Config) {
	db := loadObsWorkload(b, cfg)
	if _, err := db.ExecDiscard(twoJoinSQL, nil); err != nil { // warm
		b.Fatal(err)
	}
	tuples := obsQueryTuples(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ExecDiscard(twoJoinSQL, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// ns/tuple normalizes the comparison by the query's fixed operator
	// traffic, so the obs on/off delta reads as per-tuple overhead.
	if tuples > 0 && b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/tuples, "ns/tuple")
	}
}

var (
	obsTuplesOnce sync.Once
	obsTuples     float64
)

// obsQueryTuples counts the tuples every operator of twoJoinSQL emits,
// measured once on a metrics-enabled engine (the count is deterministic:
// same data, same plan, virtual clock).
func obsQueryTuples(b *testing.B) float64 {
	obsTuplesOnce.Do(func() {
		db := loadObsWorkload(b, Config{WorkMemPages: 16, Metrics: true})
		if _, err := db.ExecDiscard(twoJoinSQL, nil); err != nil {
			b.Fatal(err)
		}
		for _, s := range db.Metrics() {
			if s.Name == "exec_rows_out_total" {
				obsTuples += s.Value
			}
		}
	})
	return obsTuples
}

# Developer entry points; `make check` is what CI runs.

.PHONY: check test build vet fmt lint lint-report fuzz bench-obs bench-fleet bench-mt bench-snapshot chaos dash

check:
	./ci.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

fmt:
	gofmt -w .

# The repo's own go/analysis-style suite (DESIGN.md §7). Exit 1 means
# findings; fix them or add `//lint:ignore <analyzer> <reason>`.
lint:
	go run ./cmd/progresslint ./...

# Lint plus the machine-readable artifacts: the full diagnostic stream
# as JSON and the sharedstate concurrency-readiness inventory — every
# shared-mutable site in the engine-core packages with its guard
# situation, the worklist for the multi-core engine (ROADMAP item 1).
lint-report:
	go run ./cmd/progresslint -json -sharedstate CONCURRENCY.json ./...
	@echo "wrote CONCURRENCY.json"

# Open-ended fuzzing of the two engine-boundary parsers. Override the
# budget per target: make fuzz FUZZTIME=5m
FUZZTIME ?= 60s
fuzz:
	go test -run FuzzParse -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/faultinject/
	go test -run FuzzParseStatement -fuzz FuzzParseStatement -fuzztime $(FUZZTIME) ./internal/sqlparser/

# Randomized fault-schedule property suite at full depth (DESIGN.md §6):
# hundreds of deterministic random fault schedules under -race, each
# asserting error-or-correct results, zero leaks, and sane progress.
chaos:
	PROGRESSDB_CHAOS_SCHEDULES=500 go test -race -v -run TestChaosRandomFaultSchedules .

# Compare the observability-disabled and -enabled hot paths (the paper's
# "< 1% penalty" budget).
bench-obs:
	go test . -run XXX -bench 'BenchmarkObs(Disabled|Enabled)' -benchtime 50x

# Sharded-serving speedup: modeled query latency (virtual seconds, the
# simulation's own clock) for shards=4 vs shards=1 on a partitioned
# scan and a co-partitioned join.
bench-fleet:
	go test ./internal/fleet -run XXX -bench 'BenchmarkFleet' -benchtime 10x -benchmem

# Multi-worker throughput on one shared engine: wall-clock queries/s at
# workers = 1, 2, 4 over the mixed chaos workload.
bench-mt:
	go test . -run XXX -bench 'BenchmarkConcurrentThroughput' -benchtime 10x -benchmem

# Refresh the committed baselines. Review the BENCH_*.json diffs like
# code: a regression here is a hot-path or cost-model change.
bench-snapshot:
	go test . -run XXX -bench 'BenchmarkObs(Disabled|Enabled)' -benchtime 50x -benchmem \
		| go run ./cmd/benchsnap > BENCH_obs.json
	go test ./internal/fleet -run XXX -bench 'BenchmarkFleet' -benchtime 10x -benchmem \
		| go run ./cmd/benchsnap > BENCH_fleet.json
	go test . -run XXX -bench 'BenchmarkConcurrentThroughput' -benchtime 10x -benchmem \
		| go run ./cmd/benchsnap > BENCH_mt.json

# Run the daemon with the embedded dashboard on the default port.
dash:
	go run ./cmd/progressd -addr 127.0.0.1:8080 -debug-addr 127.0.0.1:6060

# Developer entry points; `make check` is what CI runs.

.PHONY: check test build vet fmt bench-obs chaos

check:
	./ci.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

fmt:
	gofmt -w .

# Randomized fault-schedule property suite at full depth (DESIGN.md §6):
# hundreds of deterministic random fault schedules under -race, each
# asserting error-or-correct results, zero leaks, and sane progress.
chaos:
	PROGRESSDB_CHAOS_SCHEDULES=500 go test -race -v -run TestChaosRandomFaultSchedules .

# Compare the observability-disabled and -enabled hot paths (the paper's
# "< 1% penalty" budget).
bench-obs:
	go test . -run XXX -bench 'BenchmarkObs(Disabled|Enabled)' -benchtime 50x

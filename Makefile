# Developer entry points; `make check` is what CI runs.

.PHONY: check test build vet fmt bench-obs

check:
	./ci.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

fmt:
	gofmt -w .

# Compare the observability-disabled and -enabled hot paths (the paper's
# "< 1% penalty" budget).
bench-obs:
	go test . -run XXX -bench 'BenchmarkObs(Disabled|Enabled)' -benchtime 50x

// Package client is the Go SDK for progressd, the progressdb network
// query service: submit queries over HTTP, stream their live progress
// indicator over Server-Sent Events, fetch results, and cancel.
//
// This file defines the wire schema shared by the server
// (internal/server), the daemon (cmd/progressd), and the -json output
// of cmd/progress. Every progress refresh travels as one ProgressEvent
// JSON object — the paper's Figure 2 fields (percent done, estimated
// remaining seconds, execution speed, cost in U) plus the current
// segment's estimator internals.
package client

import (
	"encoding/json"
	"math"

	"progressdb"
)

// State is a query's lifecycle state on the server.
type State string

// Lifecycle states. A query moves queued → running → one of the three
// terminal states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// SubmitRequest is the body of POST /queries.
type SubmitRequest struct {
	// SQL is the SELECT to run (required).
	SQL string `json:"sql"`
	// Name labels the query in listings and progress displays.
	Name string `json:"name,omitempty"`
	// KeepRows materializes result rows for GET /queries/{id}/result.
	// Off by default: servers streaming progress for large queries
	// usually only need the indicator.
	KeepRows bool `json:"keep_rows,omitempty"`
	// PaceMS throttles execution to at least this many real
	// milliseconds per progress refresh. The engine's clock is virtual —
	// a query that "runs" for 900 virtual seconds executes in
	// milliseconds of real time — so pacing is how a human (or a test)
	// watches the progress bar advance and has time to cancel. 0 runs
	// at full speed.
	PaceMS int `json:"pace_ms,omitempty"`
	// DeadlineMS, when > 0, is the client's completion deadline in real
	// milliseconds from submission. The server fails fast at admission
	// (429, reason "deadline") when the queue's estimated drain time
	// plus this query's estimated cost already exceeds the deadline —
	// rejecting in microseconds what would otherwise time out after
	// seconds of queueing.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SubmitResponse is the 202 body of POST /queries.
type SubmitResponse struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// QueuePosition is the 1-based position among queued queries (0
	// when the query was handed to a worker immediately).
	QueuePosition int `json:"queue_position,omitempty"`
}

// Shed reasons carried on 429/503 rejection bodies.
const (
	// ShedQueueFull: the bounded admission queue is at capacity.
	ShedQueueFull = "queue_full"
	// ShedBudget: admitting the query would push the in-flight
	// remaining-work estimate past the server's -max-inflight-u budget.
	ShedBudget = "budget"
	// ShedDeadline: the query's estimated completion time already
	// exceeds its deadline_ms.
	ShedDeadline = "deadline"
	// ShedDraining: the server is draining for shutdown and admits
	// nothing new.
	ShedDraining = "draining"
)

// ErrorResponse is the JSON body of a non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// QueueDepth is set on 429 responses: the admission queue's
	// capacity, all of it in use.
	QueueDepth int `json:"queue_depth,omitempty"`
	// Reason classifies a shed (429/503) response: one of the Shed*
	// constants.
	Reason string `json:"reason,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on 429 responses
	// with sub-second precision: the server's estimate of when capacity
	// frees up, derived from the remaining-time estimate of the
	// cheapest in-flight query.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// SegmentDetail is the executing segment's Section 4.5 estimator state.
type SegmentDetail struct {
	// Index is the segment's execution-order index.
	Index int `json:"index"`
	// P is the dominant-input fraction processed.
	P float64 `json:"p"`
	// E1 is the optimizer's output estimate fixed at segment start and
	// E the refined blend E = p·E2 + (1−p)·E1, in rows.
	E1 float64 `json:"e1"`
	E  float64 `json:"e"`
}

// ProgressEvent is one progress-indicator refresh on the wire: the SSE
// stream's data payload and cmd/progress -json's line format. Non-finite
// numbers (an unknown remaining time is NaN or +Inf early on) are
// encoded as -1, since JSON cannot carry them.
type ProgressEvent struct {
	// QueryID identifies the query (empty in cmd/progress -json output).
	QueryID string `json:"query_id,omitempty"`
	// Seq numbers the query's events from 1, strictly increasing; the
	// terminal event has the highest Seq.
	Seq int `json:"seq"`
	// State is set on terminal events (done/failed/canceled) and on the
	// first event of a running query; empty on ordinary refreshes.
	State State `json:"state,omitempty"`
	// ElapsedSeconds is virtual time since the query started.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// EstTotalU is the refined total cost and DoneU the completed work,
	// both in U (pages).
	EstTotalU float64 `json:"est_total_u"`
	DoneU     float64 `json:"done_u"`
	// Percent is estimated percent done, 0–100.
	Percent float64 `json:"percent"`
	// SpeedU is the monitored speed in U/second.
	SpeedU float64 `json:"speed_u"`
	// RemainingSeconds is the estimated remaining time (-1 = unknown).
	RemainingSeconds float64 `json:"remaining_seconds"`
	// CurrentSegment is the executing segment index (-1 when done) and
	// SegmentsDone the number of completed segments.
	CurrentSegment int `json:"current_segment"`
	SegmentsDone   int `json:"segments_done"`
	// StepPercent is the trivial step-counting baseline.
	StepPercent float64 `json:"step_percent"`
	// Segment carries the current segment's estimator detail, when a
	// segment is mid-execution.
	Segment *SegmentDetail `json:"segment,omitempty"`
	// Finished marks the indicator's final refresh.
	Finished bool `json:"finished,omitempty"`
	// Error carries the failure message on failed/canceled terminal
	// events.
	Error string `json:"error,omitempty"`
	// Shards carries the per-shard breakdown when the server fronts a
	// sharded fleet; absent on single-engine deployments.
	Shards []ShardProgress `json:"shards,omitempty"`
}

// ShardProgress is one shard's slice of a fleet query's progress, as
// embedded in a fleet deployment's ProgressEvents.
type ShardProgress struct {
	// Shard is the shard id (0-based).
	Shard int `json:"shard"`
	// Percent is the shard subquery's own progress estimate, 0-100.
	Percent float64 `json:"percent"`
	// DoneU / EstTotalU are the shard's completed work and refined total
	// cost in U.
	DoneU     float64 `json:"done_u"`
	EstTotalU float64 `json:"est_total_u"`
	// SpeedU is the shard's monitored speed in U/second.
	SpeedU float64 `json:"speed_u"`
	// ElapsedSeconds is the shard's own virtual elapsed time.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Finished marks a shard whose subquery has completed.
	Finished bool `json:"finished,omitempty"`
}

// Terminal reports whether the event closes the stream.
func (e ProgressEvent) Terminal() bool { return e.State.Terminal() }

// finite maps NaN and ±Inf to -1 for JSON transport.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}

// EventFromReport converts an engine progress report to the wire form.
// Seq is left 0; the publisher assigns it.
func EventFromReport(queryID string, r progressdb.Report) ProgressEvent {
	ev := ProgressEvent{
		QueryID:          queryID,
		ElapsedSeconds:   finite(r.ElapsedSeconds),
		EstTotalU:        finite(r.EstimatedCostU),
		DoneU:            finite(r.DoneU),
		Percent:          finite(r.Percent),
		SpeedU:           finite(r.SpeedU),
		RemainingSeconds: finite(r.RemainingSeconds),
		CurrentSegment:   r.CurrentSegment,
		SegmentsDone:     r.SegmentsDone,
		StepPercent:      finite(r.StepPercent),
		Finished:         r.Finished,
	}
	if r.CurrentSegment >= 0 && !r.Finished {
		ev.Segment = &SegmentDetail{
			Index: r.CurrentSegment,
			P:     finite(r.CurrentP),
			E1:    finite(r.CurrentE1),
			E:     finite(r.CurrentE),
		}
	}
	return ev
}

// QueryInfo is one query's snapshot: GET /queries/{id} and the elements
// of GET /queries.
type QueryInfo struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	SQL   string `json:"sql"`
	State State  `json:"state"`
	// QueuePosition is the 1-based position among queued queries; 0
	// otherwise.
	QueuePosition int `json:"queue_position,omitempty"`
	// SubmittedAtMS / StartedAtMS / FinishedAtMS are Unix milliseconds
	// (real time); zero when the phase has not been reached.
	SubmittedAtMS int64 `json:"submitted_at_ms"`
	StartedAtMS   int64 `json:"started_at_ms,omitempty"`
	FinishedAtMS  int64 `json:"finished_at_ms,omitempty"`
	// Progress is the latest progress event, when any was taken.
	Progress *ProgressEvent `json:"progress,omitempty"`
	// Error is the failure (or cancellation) message on terminal states.
	Error string `json:"error,omitempty"`
	// VirtualSeconds and RowCount summarize a done query's result.
	VirtualSeconds float64 `json:"virtual_seconds,omitempty"`
	RowCount       int     `json:"row_count,omitempty"`
}

// ResultResponse is GET /queries/{id}/result: the completed query's
// rows. Rows is null when the query was submitted without keep_rows.
// JSON decoding turns integer values into float64, per encoding/json.
type ResultResponse struct {
	ID             string          `json:"id"`
	Columns        []string        `json:"columns"`
	Rows           [][]interface{} `json:"rows"`
	RowCount       int             `json:"row_count"`
	VirtualSeconds float64         `json:"virtual_seconds"`
	// Refreshes is how many progress reports the indicator took.
	Refreshes int `json:"refreshes"`
}

// HealthResponse is GET /healthz.
type HealthResponse struct {
	// Status is "ok", or "draining" once shutdown has begun.
	Status  string `json:"status"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Workers int    `json:"workers"`
	// InflightU is the admission controller's current remaining-work
	// estimate across admitted queries (sum of est_total_u − done_u, in
	// U) and InflightQueries how many queries it covers.
	InflightU       float64 `json:"inflight_u"`
	InflightQueries int     `json:"inflight_queries"`
	// MaxInflightU echoes the configured budget (0 = unlimited).
	MaxInflightU float64 `json:"max_inflight_u,omitempty"`
	// Shards is the per-shard health/breaker breakdown on fleet
	// deployments; absent on single-engine servers.
	Shards []ShardHealth `json:"shards,omitempty"`
}

// ShardHealth is one shard's resilience summary inside HealthResponse.
type ShardHealth struct {
	Shard int `json:"shard"`
	// Breaker is the shard's circuit breaker state: "closed", "open",
	// or "half_open".
	Breaker string `json:"breaker"`
	// ConsecutiveFailures is the current subquery failure streak.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// Retries / Trips / FastFails are lifetime counts: transient-fault
	// subquery retries, breaker trips, and fan-outs rejected while open.
	Retries   int64 `json:"retries,omitempty"`
	Trips     int64 `json:"trips,omitempty"`
	FastFails int64 `json:"fast_fails,omitempty"`
}

// DrainResponse is POST /admin/drain: the outcome of a graceful drain.
type DrainResponse struct {
	// Drained is true when every in-flight query finished inside the
	// drain deadline; false when the deadline forced cancellations.
	Drained bool `json:"drained"`
	// ForcedCancels is how many queries were canceled at the deadline.
	ForcedCancels int `json:"forced_cancels"`
	// WaitedMS is how long the drain waited, in real milliseconds.
	WaitedMS int64 `json:"waited_ms"`
}

// ---- observability plane: /api/timeseries, /api/history -------------

// TSPoint is one timestamped sample in a timeseries window. T is
// seconds — wall-clock Unix seconds on a live daemon, virtual seconds
// when a test drives the sampler off the engine clock.
type TSPoint struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// TimeseriesSeries is one metric's windowed, downsampled point list.
type TimeseriesSeries struct {
	// Name is the series identity: the metric name, plus its label for
	// labeled families (e.g. `vclock_units{kind="cpu"}`) and a _count /
	// _sum suffix for histogram-derived series.
	Name string `json:"name"`
	// Kind is the underlying instrument kind (counter/gauge/histogram).
	Kind string `json:"kind"`
	// Help is the instrument's registration help text.
	Help   string    `json:"help,omitempty"`
	Points []TSPoint `json:"points"`
}

// TimeseriesResponse is GET /api/timeseries.
type TimeseriesResponse struct {
	// Now is the server's current sample-clock reading in seconds.
	Now float64 `json:"now"`
	// WindowSeconds echoes the effective query window.
	WindowSeconds float64 `json:"window_seconds"`
	// SampleIntervalMS is the sampler's configured cadence (0 when the
	// sampler is disabled and samples are driven externally).
	SampleIntervalMS int                `json:"sample_interval_ms"`
	Series           []TimeseriesSeries `json:"series"`
}

// SegmentProfile is one segment's estimated-vs-actual record in a
// completed query's profile.
type SegmentProfile struct {
	Index int    `json:"index"`
	Root  string `json:"root"`
	// EstCostU / ActualCostU compare the optimizer's initial segment
	// cost with the work actually done, in U.
	EstCostU    float64 `json:"est_cost_u"`
	ActualCostU float64 `json:"actual_cost_u"`
	// EstRows is the optimizer's E1; ActualRows the observed output
	// (-1 for the final segment, whose output is the result set).
	EstRows    float64 `json:"est_rows"`
	ActualRows float64 `json:"actual_rows"`
	// QError is max(est/actual, actual/est) for the row estimates
	// (-1 when undefined, e.g. the final segment).
	QError float64 `json:"q_error"`
	// StartSeconds / EndSeconds bound the segment in virtual time.
	StartSeconds float64 `json:"start_seconds"`
	EndSeconds   float64 `json:"end_seconds"`
	Done         bool    `json:"done"`
}

// QueryProfile is GET /api/history/{id}: everything the server retained
// about one terminal query — the judge-the-estimator record König et
// al. need (the full progress-vs-time trajectory), plus the paper's
// Section 6 per-segment tuning ledger.
type QueryProfile struct {
	// Query is the final lifecycle snapshot.
	Query QueryInfo `json:"query"`
	// Events is the complete progress-event ledger in publish order,
	// terminal event last — byte-for-byte what SSE subscribers saw.
	Events []ProgressEvent `json:"events"`
	// Segments is the per-segment ledger (only available for queries
	// that ran to completion).
	Segments []SegmentProfile `json:"segments,omitempty"`
	// RemainingQError scores the remaining-time estimate at each
	// non-terminal refresh against what actually remained:
	// max(est/actual, actual/est), -1 where undefined. Parallel to the
	// non-terminal prefix of Events; only filled for done queries.
	RemainingQError []float64 `json:"remaining_q_error,omitempty"`
	// Counters are engine counter deltas attributable to this query's
	// execution (I/O retries, injected faults); absent when the engine
	// registry is disabled or the counters never moved.
	Counters map[string]float64 `json:"counters,omitempty"`
	// Trace is the query → segment → operator span tree when the engine
	// ran with tracing enabled.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// HistorySummary is one element of GET /api/history's ranked listing.
type HistorySummary struct {
	ID           string  `json:"id"`
	Name         string  `json:"name,omitempty"`
	State        State   `json:"state"`
	FinishedAtMS int64   `json:"finished_at_ms"`
	VirtualSecs  float64 `json:"virtual_seconds"`
	Events       int     `json:"events"`
	Segments     int     `json:"segments"`
	// MeanRemainingQError averages RemainingQError's defined entries
	// (-1 when the profile has none) — the listing's estimator score.
	MeanRemainingQError float64 `json:"mean_remaining_q_error"`
	Error               string  `json:"error,omitempty"`
}

// HistoryResponse is GET /api/history.
type HistoryResponse struct {
	// Capacity is the store's bound and Retained how many profiles it
	// currently holds (retained ≤ capacity; oldest evicted first).
	Capacity int `json:"capacity"`
	Retained int `json:"retained"`
	// Profiles are ranked per the request's sort order (default:
	// newest-terminal-first).
	Profiles []HistorySummary `json:"profiles"`
}

// DashboardConfig is GET /api/dashboard/config: what the embedded
// dashboard needs to render without hard-coding server settings.
type DashboardConfig struct {
	// SparklineSeries are the series IDs the dashboard's metric panel
	// plots (lint-checked against the module's registrations).
	SparklineSeries  []string `json:"sparkline_series"`
	SampleIntervalMS int      `json:"sample_interval_ms"`
	KeepAliveMS      int      `json:"keepalive_ms"`
	HistoryCapacity  int      `json:"history_capacity"`
	// Shards is the serving engine's shard count; values > 1 switch the
	// dashboard into fleet mode (per-shard heatmap panel).
	Shards int `json:"shards,omitempty"`
}

// Package client is the Go SDK for progressd, the progressdb network
// query service: submit queries over HTTP, stream their live progress
// indicator over Server-Sent Events, fetch results, and cancel.
//
// This file defines the wire schema shared by the server
// (internal/server), the daemon (cmd/progressd), and the -json output
// of cmd/progress. Every progress refresh travels as one ProgressEvent
// JSON object — the paper's Figure 2 fields (percent done, estimated
// remaining seconds, execution speed, cost in U) plus the current
// segment's estimator internals.
package client

import (
	"math"

	"progressdb"
)

// State is a query's lifecycle state on the server.
type State string

// Lifecycle states. A query moves queued → running → one of the three
// terminal states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// SubmitRequest is the body of POST /queries.
type SubmitRequest struct {
	// SQL is the SELECT to run (required).
	SQL string `json:"sql"`
	// Name labels the query in listings and progress displays.
	Name string `json:"name,omitempty"`
	// KeepRows materializes result rows for GET /queries/{id}/result.
	// Off by default: servers streaming progress for large queries
	// usually only need the indicator.
	KeepRows bool `json:"keep_rows,omitempty"`
	// PaceMS throttles execution to at least this many real
	// milliseconds per progress refresh. The engine's clock is virtual —
	// a query that "runs" for 900 virtual seconds executes in
	// milliseconds of real time — so pacing is how a human (or a test)
	// watches the progress bar advance and has time to cancel. 0 runs
	// at full speed.
	PaceMS int `json:"pace_ms,omitempty"`
}

// SubmitResponse is the 202 body of POST /queries.
type SubmitResponse struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// QueuePosition is the 1-based position among queued queries (0
	// when the query was handed to a worker immediately).
	QueuePosition int `json:"queue_position,omitempty"`
}

// ErrorResponse is the JSON body of a non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// QueueDepth is set on 429 responses: the admission queue's
	// capacity, all of it in use.
	QueueDepth int `json:"queue_depth,omitempty"`
}

// SegmentDetail is the executing segment's Section 4.5 estimator state.
type SegmentDetail struct {
	// Index is the segment's execution-order index.
	Index int `json:"index"`
	// P is the dominant-input fraction processed.
	P float64 `json:"p"`
	// E1 is the optimizer's output estimate fixed at segment start and
	// E the refined blend E = p·E2 + (1−p)·E1, in rows.
	E1 float64 `json:"e1"`
	E  float64 `json:"e"`
}

// ProgressEvent is one progress-indicator refresh on the wire: the SSE
// stream's data payload and cmd/progress -json's line format. Non-finite
// numbers (an unknown remaining time is NaN or +Inf early on) are
// encoded as -1, since JSON cannot carry them.
type ProgressEvent struct {
	// QueryID identifies the query (empty in cmd/progress -json output).
	QueryID string `json:"query_id,omitempty"`
	// Seq numbers the query's events from 1, strictly increasing; the
	// terminal event has the highest Seq.
	Seq int `json:"seq"`
	// State is set on terminal events (done/failed/canceled) and on the
	// first event of a running query; empty on ordinary refreshes.
	State State `json:"state,omitempty"`
	// ElapsedSeconds is virtual time since the query started.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// EstTotalU is the refined total cost and DoneU the completed work,
	// both in U (pages).
	EstTotalU float64 `json:"est_total_u"`
	DoneU     float64 `json:"done_u"`
	// Percent is estimated percent done, 0–100.
	Percent float64 `json:"percent"`
	// SpeedU is the monitored speed in U/second.
	SpeedU float64 `json:"speed_u"`
	// RemainingSeconds is the estimated remaining time (-1 = unknown).
	RemainingSeconds float64 `json:"remaining_seconds"`
	// CurrentSegment is the executing segment index (-1 when done) and
	// SegmentsDone the number of completed segments.
	CurrentSegment int `json:"current_segment"`
	SegmentsDone   int `json:"segments_done"`
	// StepPercent is the trivial step-counting baseline.
	StepPercent float64 `json:"step_percent"`
	// Segment carries the current segment's estimator detail, when a
	// segment is mid-execution.
	Segment *SegmentDetail `json:"segment,omitempty"`
	// Finished marks the indicator's final refresh.
	Finished bool `json:"finished,omitempty"`
	// Error carries the failure message on failed/canceled terminal
	// events.
	Error string `json:"error,omitempty"`
}

// Terminal reports whether the event closes the stream.
func (e ProgressEvent) Terminal() bool { return e.State.Terminal() }

// finite maps NaN and ±Inf to -1 for JSON transport.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}

// EventFromReport converts an engine progress report to the wire form.
// Seq is left 0; the publisher assigns it.
func EventFromReport(queryID string, r progressdb.Report) ProgressEvent {
	ev := ProgressEvent{
		QueryID:          queryID,
		ElapsedSeconds:   finite(r.ElapsedSeconds),
		EstTotalU:        finite(r.EstimatedCostU),
		DoneU:            finite(r.DoneU),
		Percent:          finite(r.Percent),
		SpeedU:           finite(r.SpeedU),
		RemainingSeconds: finite(r.RemainingSeconds),
		CurrentSegment:   r.CurrentSegment,
		SegmentsDone:     r.SegmentsDone,
		StepPercent:      finite(r.StepPercent),
		Finished:         r.Finished,
	}
	if r.CurrentSegment >= 0 && !r.Finished {
		ev.Segment = &SegmentDetail{
			Index: r.CurrentSegment,
			P:     finite(r.CurrentP),
			E1:    finite(r.CurrentE1),
			E:     finite(r.CurrentE),
		}
	}
	return ev
}

// QueryInfo is one query's snapshot: GET /queries/{id} and the elements
// of GET /queries.
type QueryInfo struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	SQL   string `json:"sql"`
	State State  `json:"state"`
	// QueuePosition is the 1-based position among queued queries; 0
	// otherwise.
	QueuePosition int `json:"queue_position,omitempty"`
	// SubmittedAtMS / StartedAtMS / FinishedAtMS are Unix milliseconds
	// (real time); zero when the phase has not been reached.
	SubmittedAtMS int64 `json:"submitted_at_ms"`
	StartedAtMS   int64 `json:"started_at_ms,omitempty"`
	FinishedAtMS  int64 `json:"finished_at_ms,omitempty"`
	// Progress is the latest progress event, when any was taken.
	Progress *ProgressEvent `json:"progress,omitempty"`
	// Error is the failure (or cancellation) message on terminal states.
	Error string `json:"error,omitempty"`
	// VirtualSeconds and RowCount summarize a done query's result.
	VirtualSeconds float64 `json:"virtual_seconds,omitempty"`
	RowCount       int     `json:"row_count,omitempty"`
}

// ResultResponse is GET /queries/{id}/result: the completed query's
// rows. Rows is null when the query was submitted without keep_rows.
// JSON decoding turns integer values into float64, per encoding/json.
type ResultResponse struct {
	ID             string          `json:"id"`
	Columns        []string        `json:"columns"`
	Rows           [][]interface{} `json:"rows"`
	RowCount       int             `json:"row_count"`
	VirtualSeconds float64         `json:"virtual_seconds"`
	// Refreshes is how many progress reports the indicator took.
	Refreshes int `json:"refreshes"`
}

// HealthResponse is GET /healthz.
type HealthResponse struct {
	Status  string `json:"status"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Workers int    `json:"workers"`
}

package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// shedServer returns an httptest server whose /queries endpoint sheds the
// first n submits with the given status/reason, then admits. The shed
// body carries retry_after_seconds so the client backoff is server-paced.
func shedServer(n int, status int, reason string, retryAfter float64) (*httptest.Server, *int) {
	attempts := new(int)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", func(w http.ResponseWriter, r *http.Request) {
		*attempts++
		if *attempts <= n {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(ErrorResponse{
				Error: "overloaded", Reason: reason, RetryAfterSeconds: retryAfter,
			})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(SubmitResponse{ID: "q-ok", State: StateQueued})
	})
	return httptest.NewServer(mux), attempts
}

// TestSubmitWithRetryHonorsRetryAfter: shed submits are retried after the
// server-provided retry_after_seconds, and the eventual admit is returned.
func TestSubmitWithRetryHonorsRetryAfter(t *testing.T) {
	ts, attempts := shedServer(2, http.StatusTooManyRequests, ShedBudget, 0.03)
	defer ts.Close()
	cl := New(ts.URL)

	start := time.Now()
	sub, err := cl.SubmitWithRetry(context.Background(), SubmitRequest{SQL: "select 1"},
		RetryPolicy{MaxAttempts: 5, NoJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID != "q-ok" || *attempts != 3 {
		t.Fatalf("id=%q attempts=%d, want q-ok after 3 attempts", sub.ID, *attempts)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("retried after %v, want >= 2 × 30ms server-paced backoff", elapsed)
	}
}

// TestSubmitWithRetryGivesUp: MaxAttempts bounds the retries and the
// final error still exposes the shed reason.
func TestSubmitWithRetryGivesUp(t *testing.T) {
	ts, attempts := shedServer(100, http.StatusTooManyRequests, ShedBudget, 0.005)
	defer ts.Close()
	cl := New(ts.URL)

	_, err := cl.SubmitWithRetry(context.Background(), SubmitRequest{SQL: "select 1"},
		RetryPolicy{MaxAttempts: 3, NoJitter: true})
	if err == nil {
		t.Fatal("submit succeeded against a permanently shedding server")
	}
	if *attempts != 3 {
		t.Fatalf("attempts = %d, want 3", *attempts)
	}
	if ShedReason(err) != ShedBudget {
		t.Fatalf("final error lost the shed reason: %v", err)
	}
	if !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("final error does not mark exhaustion: %v", err)
	}
}

// TestSubmitWithRetryNonRetryable: deadline sheds and draining (503)
// responses fail immediately — retrying cannot help either.
func TestSubmitWithRetryNonRetryable(t *testing.T) {
	cases := []struct {
		status int
		reason string
	}{
		{http.StatusTooManyRequests, ShedDeadline},
		{http.StatusServiceUnavailable, ShedDraining},
	}
	for _, tc := range cases {
		ts, attempts := shedServer(100, tc.status, tc.reason, 0.005)
		cl := New(ts.URL)
		_, err := cl.SubmitWithRetry(context.Background(), SubmitRequest{SQL: "select 1"},
			RetryPolicy{MaxAttempts: 5, NoJitter: true})
		ts.Close()
		if err == nil || *attempts != 1 {
			t.Fatalf("%s: attempts=%d err=%v, want single non-retried failure", tc.reason, *attempts, err)
		}
		if ShedReason(err) != tc.reason {
			t.Fatalf("%s: error lost the reason: %v", tc.reason, err)
		}
	}
}

// TestSubmitWithRetryContextCancel: a canceled context interrupts the
// backoff sleep rather than waiting it out.
func TestSubmitWithRetryContextCancel(t *testing.T) {
	ts, _ := shedServer(100, http.StatusTooManyRequests, ShedQueueFull, 30)
	defer ts.Close()
	cl := New(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.SubmitWithRetry(ctx, SubmitRequest{SQL: "select 1"},
		RetryPolicy{MaxAttempts: 5, NoJitter: true})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v; backoff sleep is not context-aware", elapsed)
	}
}

// TestAPIErrorHeaderFallback: a 429 with only a Retry-After header (no
// structured body) still populates RetryAfterSeconds.
func TestAPIErrorHeaderFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte("busy"))
	}))
	defer ts.Close()
	cl := New(ts.URL)

	_, err := cl.Submit(context.Background(), SubmitRequest{SQL: "select 1"})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T %v, want *APIError", err, err)
	}
	if ae.RetryAfterSeconds != 7 {
		t.Fatalf("RetryAfterSeconds = %g, want 7 from header", ae.RetryAfterSeconds)
	}
}

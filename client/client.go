package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to a progressd server.
type Client struct {
	base string
	hc   *http.Client
}

// New creates a client for a server base URL, e.g.
// "http://127.0.0.1:8080". The underlying http.Client has no timeout:
// progress streams are long-lived; bound calls with a context instead.
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// BaseURL returns the server base URL the client was built with,
// normalized (no trailing slash).
func (c *Client) BaseURL() string { return c.base }

// APIError is a non-2xx server response.
type APIError struct {
	// Status is the HTTP status code (429 = shed by admission control).
	Status int
	// Msg is the server's error message.
	Msg string
	// QueueDepth accompanies queue-full sheds: the full queue's capacity.
	QueueDepth int
	// Reason is the shed reason on 429/503 admission rejections: one of
	// the Shed* constants ("" on older servers and non-admission errors).
	Reason string
	// RetryAfterSeconds is the server's capacity estimate on a shed, from
	// the response body (sub-second precision) or the Retry-After header;
	// 0 when the server attached none.
	RetryAfterSeconds float64
}

func (e *APIError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("progressd: %d (shed: %s): %s", e.Status, e.Reason, e.Msg)
	}
	return fmt.Sprintf("progressd: %d: %s", e.Status, e.Msg)
}

// IsQueueFull reports whether err is a 429 admission rejection.
func IsQueueFull(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests
}

// ShedReason extracts the admission shed reason from err ("" when err is
// not a shed rejection).
func ShedReason(err error) string {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Reason
	}
	return ""
}

// CloseIdleConnections closes keep-alive connections the client is no
// longer using. Mostly useful in tests that account for goroutines.
func (c *Client) CloseIdleConnections() {
	c.hc.CloseIdleConnections()
}

// do performs one JSON request/response round trip.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return apiError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func apiError(resp *http.Response) error {
	ae := &APIError{Status: resp.StatusCode}
	var er ErrorResponse
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if json.Unmarshal(data, &er) == nil && er.Error != "" {
		ae.Msg, ae.QueueDepth = er.Error, er.QueueDepth
		ae.Reason, ae.RetryAfterSeconds = er.Reason, er.RetryAfterSeconds
	} else {
		ae.Msg = strings.TrimSpace(string(data))
	}
	if ae.RetryAfterSeconds == 0 {
		// Fall back to the standard header (whole seconds).
		if v := resp.Header.Get("Retry-After"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				ae.RetryAfterSeconds = float64(n)
			}
		}
	}
	return ae
}

// Submit enqueues a query; the server answers immediately with the
// query ID and admission state. A full queue returns an *APIError with
// Status 429 (see IsQueueFull).
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.do(ctx, http.MethodPost, "/queries", req, &out)
	return out, err
}

// RetryPolicy shapes SubmitWithRetry's backoff. The zero value means
// the documented defaults.
type RetryPolicy struct {
	// MaxAttempts bounds total submit attempts (default 8).
	MaxAttempts int
	// BaseBackoff seeds the exponential fallback delay used when the
	// server attaches no Retry-After estimate (default 100ms, doubling).
	BaseBackoff time.Duration
	// MaxBackoff caps any single wait, server-advised or not (default 5s).
	MaxBackoff time.Duration
	// NoJitter disables the random up-to-+20% spread added to each wait.
	// Leave it false in production — jitter is what keeps a crowd of
	// shed clients from re-stampeding the server in lockstep.
	NoJitter bool
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	return p
}

// retryableShed reports whether a shed is worth retrying: capacity sheds
// (queue full, budget exhausted) clear as in-flight work drains; a
// deadline shed will fail the same way every time, and a draining server
// is going away.
func retryableShed(ae *APIError) bool {
	if ae.Status != http.StatusTooManyRequests {
		return false
	}
	switch ae.Reason {
	case ShedQueueFull, ShedBudget:
		return true
	case "":
		return true // older servers shed without a reason; 429 is capacity
	}
	return false
}

// SubmitWithRetry submits a query, absorbing capacity sheds (429 with
// reason "queue_full" or "budget") by waiting and resubmitting. The wait
// honors the server's Retry-After estimate when present — that figure is
// derived from the remaining-time estimate of the cheapest in-flight
// query, so it approximates when budget actually frees — and falls back
// to exponential backoff otherwise; every wait is jittered (up to +20%)
// and capped by the policy. Non-capacity errors (including deadline and
// draining sheds) are returned immediately.
func (c *Client) SubmitWithRetry(ctx context.Context, req SubmitRequest, policy RetryPolicy) (SubmitResponse, error) {
	policy = policy.withDefaults()
	fallback := policy.BaseBackoff
	var lastErr error
	for attempt := 1; attempt <= policy.MaxAttempts; attempt++ {
		out, err := c.Submit(ctx, req)
		if err == nil {
			return out, nil
		}
		lastErr = err
		var ae *APIError
		if !errors.As(err, &ae) || !retryableShed(ae) {
			return SubmitResponse{}, err
		}
		wait := fallback
		fallback *= 2
		if ae.RetryAfterSeconds > 0 {
			wait = time.Duration(ae.RetryAfterSeconds * float64(time.Second))
		}
		if !policy.NoJitter {
			wait += time.Duration(rand.Int63n(int64(wait)/5 + 1))
		}
		if wait > policy.MaxBackoff {
			wait = policy.MaxBackoff
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return SubmitResponse{}, ctx.Err()
		}
	}
	return SubmitResponse{}, fmt.Errorf("client: submit shed %d times, giving up: %w", policy.MaxAttempts, lastErr)
}

// SubmitAndWait submits with retry and then follows the query's progress
// stream to its terminal event, invoking onEvent (when non-nil) for every
// event along the way. It returns the query's final lifecycle snapshot;
// a query that ends failed or canceled is reported through the snapshot's
// State/Error fields, not through the error return (which covers
// transport and admission problems only).
func (c *Client) SubmitAndWait(ctx context.Context, req SubmitRequest, policy RetryPolicy, onEvent func(ProgressEvent)) (QueryInfo, error) {
	sub, err := c.SubmitWithRetry(ctx, req, policy)
	if err != nil {
		return QueryInfo{}, err
	}
	err = c.Stream(ctx, sub.ID, func(ev ProgressEvent) error {
		if onEvent != nil {
			onEvent(ev)
		}
		return nil
	})
	if err != nil {
		return QueryInfo{}, err
	}
	return c.Get(ctx, sub.ID)
}

// Drain asks the server to drain (POST /admin/drain): stop admitting,
// wait up to timeout for in-flight queries, then force-cancel stragglers.
// timeout <= 0 uses the server's configured default. The call blocks
// until the drain resolves.
func (c *Client) Drain(ctx context.Context, timeout time.Duration) (DrainResponse, error) {
	path := "/admin/drain"
	if timeout > 0 {
		path += "?timeout_ms=" + strconv.FormatInt(timeout.Milliseconds(), 10)
	}
	var out DrainResponse
	err := c.do(ctx, http.MethodPost, path, nil, &out)
	return out, err
}

// Get fetches one query's lifecycle snapshot.
func (c *Client) Get(ctx context.Context, id string) (QueryInfo, error) {
	var out QueryInfo
	err := c.do(ctx, http.MethodGet, "/queries/"+id, nil, &out)
	return out, err
}

// List fetches all queries in submission order.
func (c *Client) List(ctx context.Context) ([]QueryInfo, error) {
	var out []QueryInfo
	err := c.do(ctx, http.MethodGet, "/queries", nil, &out)
	return out, err
}

// Cancel requests cancellation. Queued queries transition to canceled
// immediately; running queries unwind at the executor's next safe point
// and transition shortly after (poll Get to observe it). Canceling a
// query already in a terminal state is a no-op. The returned snapshot
// is taken after the request is registered.
func (c *Client) Cancel(ctx context.Context, id string) (QueryInfo, error) {
	var out QueryInfo
	err := c.do(ctx, http.MethodDelete, "/queries/"+id, nil, &out)
	return out, err
}

// Result fetches a completed query's rows (404 until the query is done).
func (c *Client) Result(ctx context.Context, id string) (ResultResponse, error) {
	var out ResultResponse
	err := c.do(ctx, http.MethodGet, "/queries/"+id+"/result", nil, &out)
	return out, err
}

// Health fetches the server's health summary.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// MetricsText fetches the Prometheus exposition page.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// TimeseriesRequest parameterizes Timeseries. The zero value asks for
// every series over the server's default window at its default point
// budget.
type TimeseriesRequest struct {
	// Metrics restricts the response to these series IDs (empty = all).
	Metrics []string
	// WindowSeconds bounds the window ending now (0 = server default).
	WindowSeconds float64
	// MaxPoints caps points per series after downsampling (0 = server
	// default).
	MaxPoints int
}

// Timeseries fetches windowed, downsampled metric series from
// GET /api/timeseries.
func (c *Client) Timeseries(ctx context.Context, req TimeseriesRequest) (TimeseriesResponse, error) {
	q := url.Values{}
	if len(req.Metrics) > 0 {
		q.Set("metrics", strings.Join(req.Metrics, ","))
	}
	if req.WindowSeconds > 0 {
		q.Set("window", strconv.FormatFloat(req.WindowSeconds, 'g', -1, 64))
	}
	if req.MaxPoints > 0 {
		q.Set("points", strconv.Itoa(req.MaxPoints))
	}
	path := "/api/timeseries"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out TimeseriesResponse
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// History fetches the completed-query listing from GET /api/history.
// sort is "finished" (newest-terminal-first, the default when empty),
// "duration", or "qerror"; limit caps the number of summaries (0 = all
// retained).
func (c *Client) History(ctx context.Context, sort string, limit int) (HistoryResponse, error) {
	q := url.Values{}
	if sort != "" {
		q.Set("sort", sort)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/api/history"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out HistoryResponse
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// HistoryProfile fetches one terminal query's full retained profile
// from GET /api/history/{id} (404 once evicted or never terminal).
func (c *Client) HistoryProfile(ctx context.Context, id string) (QueryProfile, error) {
	var out QueryProfile
	err := c.do(ctx, http.MethodGet, "/api/history/"+id, nil, &out)
	return out, err
}

// ErrStop stops a Stream early from inside the callback without
// reporting an error.
var ErrStop = errors.New("client: stop streaming")

// streamMaxRetries bounds consecutive reconnection attempts after a
// dropped SSE connection; the counter resets whenever an event arrives.
const streamMaxRetries = 5

// Stream subscribes to a query's live progress (GET
// /queries/{id}/progress, Server-Sent Events) and invokes fn for every
// event, including a replay of refreshes that happened before the
// subscription. It returns nil after the terminal event (which fn also
// sees), when fn returns ErrStop, or with the first error otherwise.
//
// A dropped connection is transparently resumed: the client reconnects
// with the standard Last-Event-ID header carrying the highest sequence
// number it has seen, the server filters its replay accordingly, and fn
// observes every event exactly once, in order, terminal event last.
// Reconnection is retried with exponential backoff up to
// streamMaxRetries consecutive failures (any delivered event resets the
// budget); an HTTP-level error (404, 400, …) is never retried.
func (c *Client) Stream(ctx context.Context, id string, fn func(ProgressEvent) error) error {
	lastSeq := 0
	retries := 0
	for {
		prev := lastSeq
		done, err := c.streamOnce(ctx, id, &lastSeq, fn)
		if done || err == nil {
			return err
		}
		if lastSeq > prev {
			retries = 0 // the connection made progress before dropping
		}
		var ae *APIError
		if errors.As(err, &ae) || ctx.Err() != nil {
			return err // server rejected the subscription, or caller gave up
		}
		// Transport-level drop: resume from lastSeq after a backoff.
		if retries++; retries > streamMaxRetries {
			return fmt.Errorf("client: progress stream for %s dropped %d times, giving up: %w", id, retries-1, err)
		}
		backoff := time.Duration(50<<uint(retries-1)) * time.Millisecond
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// streamOnce runs a single SSE connection. It updates *lastSeq as events
// are delivered (deduplicating anything at or below it, so an
// over-generous server replay cannot double-deliver) and reports
// done=true when the stream ended for good: terminal event, ErrStop, fn
// error, or caller cancellation.
func (c *Client) streamOnce(ctx context.Context, id string, lastSeq *int, fn func(ProgressEvent) error) (done bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/queries/"+id+"/progress", nil)
	if err != nil {
		return true, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(*lastSeq))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return true, ctx.Err()
		}
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return true, apiError(resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		case line == "" && len(data) > 0:
			var ev ProgressEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return true, fmt.Errorf("client: bad SSE payload: %w", err)
			}
			data = data[:0]
			if ev.Seq <= *lastSeq {
				continue // duplicate from a replay overlap
			}
			*lastSeq = ev.Seq
			if err := fn(ev); err != nil {
				if errors.Is(err, ErrStop) {
					return true, nil
				}
				return true, err
			}
			if ev.Terminal() {
				return true, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return true, ctx.Err()
		}
		return false, err
	}
	return false, io.ErrUnexpectedEOF
}

#!/bin/sh
# ci.sh — the repo's check suite: formatting, vet, build (library +
# every cmd binary), the progressd end-to-end smoke, race tests.
# Run directly or via `make check`.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l . 2>&1)
if [ -n "$unformatted" ]; then
	echo "gofmt: these files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi
echo "ok"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== build binaries =="
bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir" ./cmd/...
ls "$bindir"

echo "== progressd smoke =="
# End to end on an ephemeral port: submit a query, stream one SSE
# progress event, cancel it mid-flight, verify the server metrics,
# shut down cleanly.
"$bindir"/progressd -smoke

echo "== fault-matrix smoke =="
# 3 seeds x {read-fault, write-fault, latency} over a spilling join:
# error-or-correct results, no temp/page leaks, engine reusable.
# (`make chaos` runs the full randomized schedule suite.)
go test -run 'TestFaultMatrixSmoke|TestInjectedPanicContained' .

echo "== go test -race =="
go test -race ./...

echo "All checks passed."

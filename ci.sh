#!/bin/sh
# ci.sh — the repo's check suite: formatting, vet, build (library +
# every cmd binary), the progressd end-to-end smoke, race tests.
# Run directly or via `make check`.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l . 2>&1)
if [ -n "$unformatted" ]; then
	echo "gofmt: these files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi
echo "ok"

echo "== go vet =="
# progresslint is NOT a -vettool here: unitchecker (the protocol vet
# plugins speak) lives in golang.org/x/tools, which this module does not
# vendor. The analyzers run as a standalone binary in the progresslint
# section below instead.
go vet ./...

echo "== go build =="
go build ./...

echo "== build binaries =="
bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir" ./cmd/...
ls "$bindir"

echo "== progresslint =="
# The repo's own analyzers (DESIGN.md §7): wall-clock bans in engine
# packages, executor cancellation safe points, Open/Close unwind
# pairing, metric naming, error wrapping, plus the concurrency-
# readiness suite — lock discipline (release on all paths, no blocking
# under a lock, declared lock order), atomic-field access consistency,
# the shared-state audit of the engine-core packages, and goroutine
# shutdown observation. Exit 1 = findings, 2 = the module failed to
# load. The same run emits the sharedstate inventory (the multi-core
# worklist, ROADMAP item 1); it must parse and enumerate the audited
# scope.
"$bindir"/progresslint -sharedstate "$bindir"/concurrency.json \
	-assert-guarded "storage.Disk,storage.poolShard,catalog.Catalog,vclock.Group" ./...
grep -q '"package_vars"' "$bindir"/concurrency.json
grep -q '"structs"' "$bindir"/concurrency.json

echo "== fuzz smoke =="
# Short deterministic-budget runs of the fuzz targets; `make fuzz`
# runs them open-ended.
go test -run FuzzParse -fuzz FuzzParse -fuzztime 10s ./internal/faultinject/
go test -run FuzzParseStatement -fuzz FuzzParseStatement -fuzztime 10s ./internal/sqlparser/

echo "== progressd smoke =="
# End to end on an ephemeral port: submit a query, stream one SSE
# progress event, cancel it mid-flight, verify the server metrics, run
# a second query to completion, then exercise the observability plane —
# GET / (embedded dashboard), /api/timeseries (>= 10 series with
# windowed points), /api/history/{id} (the finished query's profile),
# and the -debug-addr surface (/debug/pprof/cmdline, /debug/runtime) —
# before shutting down cleanly. Each check asserts a 200 and, for the
# JSON endpoints, a well-formed decoded body. The smoke then drives
# the resilience surface on a budget-capped server (-max-inflight-u
# semantics, DESIGN.md §10): a second submit shed with 429, reason
# "budget", Retry-After >= 1s; /healthz budget figures; /admin/drain
# force-canceling a paced query exactly once; post-drain submits shed
# with 503 "draining"; and the server_shed_total / server_drains_total
# metrics to match.
"$bindir"/progressd -smoke

echo "== progressd concurrent smoke =="
# The multi-core lift end to end: 6 paced queries on a 4-worker server
# over one shared engine; at least 2 must be observed simultaneously
# "running", every SSE stream monotone with exactly one terminal event,
# every result correct, and the engine leak-free after the storm.
"$bindir"/progressd -workers 4 -smoke

echo "== progressd fleet smoke =="
# Same daemon stack fronting a 4-shard fleet: paced scan with per-shard
# SSE breakdowns and monotone global progress, mid-flight cancel
# propagated to every shard, merged count(*) equal to the full table,
# coordinator fleet_* metrics, and the dashboard's fleet-mode config.
"$bindir"/progressd -shards 4 -smoke

echo "== fault-matrix smoke =="
# 3 seeds x {read-fault, write-fault, latency} over a spilling join:
# error-or-correct results, no temp/page leaks, engine reusable.
# (`make chaos` runs the full randomized schedule suite.)
go test -run 'TestFaultMatrixSmoke|TestInjectedPanicContained' .

echo "== go test -race =="
go test -race ./...

echo "All checks passed."

#!/bin/sh
# ci.sh — the repo's check suite: formatting, vet, build, race tests.
# Run directly or via `make check`.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l . 2>&1)
if [ -n "$unformatted" ]; then
	echo "gofmt: these files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi
echo "ok"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "All checks passed."

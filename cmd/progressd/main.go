// Command progressd serves the progressdb engine over HTTP: submit
// queries asynchronously, stream their live progress indicators as
// Server-Sent Events, fetch results, cancel, and scrape /metrics — the
// paper's Figure 2 interface turned into a network service.
//
// Usage:
//
//	progressd [-addr 127.0.0.1:8080] [-scale 0.02] [-workers 1] [-queue 8]
//	progressd -smoke        # self-test: submit, stream, cancel, exit
//
// Then, e.g.:
//
//	curl -s -X POST localhost:8080/queries -d '{"sql":"select ...","pace_ms":100}'
//	curl -N localhost:8080/queries/q1/progress
//	curl -s -X DELETE localhost:8080/queries/q1
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"progressdb"
	"progressdb/client"
	"progressdb/internal/faultinject"
	"progressdb/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	scale := flag.Float64("scale", 0.02, "paper workload scale loaded at startup")
	workers := flag.Int("workers", 1, "admission workers")
	queue := flag.Int("queue", 8, "admission queue depth (full queue → 429)")
	workMem := flag.Int("workmem", 16, "work_mem in 8KiB pages")
	update := flag.Float64("update", 10, "progress refresh period in virtual seconds")
	metrics := flag.Bool("metrics", true, "enable the engine metrics registry")
	fault := flag.String("fault", "", "chaos-testing fault spec, e.g. seed=7,readerr=0.01,transient=0.5,target=temp (see DESIGN.md)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query wall-clock deadline (0 = none); expired queries fail with a timeout error")
	smoke := flag.Bool("smoke", false, "run the self-test (submit, stream, cancel, clean shutdown) and exit")
	flag.Parse()

	if _, err := faultinject.Parse(*fault); err != nil {
		fmt.Fprintln(os.Stderr, "progressd: -fault:", err)
		os.Exit(2)
	}

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "progressd smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("progressd smoke: ok")
		return
	}

	db := progressdb.Open(progressdb.Config{
		WorkMemPages:          *workMem,
		ProgressUpdateSeconds: *update,
		// Calibrate virtual time to full-scale durations (see DESIGN.md).
		SeqPageCost:  0.8e-3 / *scale,
		RandPageCost: 6.4e-3 / *scale,
		Metrics:      *metrics,
		FaultSpec:    *fault,
	})
	if *fault != "" {
		fmt.Printf("progressd: fault injection armed: %s\n", *fault)
	}
	fmt.Printf("progressd: loading paper workload at scale %g ...\n", *scale)
	if err := db.LoadPaperWorkload(*scale, false); err != nil {
		fmt.Fprintln(os.Stderr, "progressd:", err)
		os.Exit(1)
	}

	srv := server.New(db, server.Config{Workers: *workers, QueueDepth: *queue, QueryTimeout: *queryTimeout})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "progressd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Printf("progressd: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("\nprogressd: %s, shutting down\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "progressd:", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	srv.Close()
}

// runSmoke is the CI self-test: bring the full daemon stack up on an
// ephemeral port with a tiny synthetic table, submit a paced query
// through the Go client, stream at least one SSE progress event, cancel
// it, verify the canceled transition and the metrics counters, and shut
// down cleanly.
func runSmoke() error {
	db := progressdb.Open(progressdb.Config{
		ProgressUpdateSeconds: 0.25,
		SpeedWindowSeconds:    1,
		SeqPageCost:           0.05, // stretch virtual time → many refreshes
		BufferPoolPages:       64,   // keep the scan I/O-bound
		Metrics:               true,
	})
	db.MustCreateTable("t", progressdb.Col("k", progressdb.Int), progressdb.Col("pad", progressdb.Text))
	pad := strings.Repeat("x", 100)
	for i := 0; i < 20000; i++ {
		db.MustInsert("t", int64(i), pad)
	}
	if err := db.Analyze(); err != nil {
		return err
	}
	if err := db.ColdRestart(); err != nil {
		return err
	}

	srv := server.New(db, server.Config{Workers: 1, QueueDepth: 4})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl := client.New("http://" + ln.Addr().String())

	sub, err := cl.Submit(ctx, client.SubmitRequest{
		SQL: "select * from t", Name: "smoke", PaceMS: 20,
	})
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Printf("progressd smoke: submitted %s (%s)\n", sub.ID, sub.State)

	events := 0
	var last client.ProgressEvent
	err = cl.Stream(ctx, sub.ID, func(ev client.ProgressEvent) error {
		last = ev
		if !ev.Terminal() {
			events++
			if events == 1 {
				fmt.Printf("progressd smoke: first event %.1f%% done, %.0fs left\n",
					ev.Percent, ev.RemainingSeconds)
				if _, err := cl.Cancel(ctx, sub.ID); err != nil {
					return fmt.Errorf("cancel: %w", err)
				}
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if events < 1 {
		return fmt.Errorf("no progress events before terminal")
	}
	if last.State != client.StateCanceled {
		return fmt.Errorf("terminal state = %s, want canceled", last.State)
	}
	info, err := cl.Get(ctx, sub.ID)
	if err != nil {
		return err
	}
	if info.State != client.StateCanceled {
		return fmt.Errorf("snapshot state = %s, want canceled", info.State)
	}
	text, err := cl.MetricsText(ctx)
	if err != nil {
		return err
	}
	for _, want := range []string{"server_queries_admitted_total 1", "server_queries_canceled_total 1"} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	srv.Close()
	return nil
}

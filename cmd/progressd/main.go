// Command progressd serves the progressdb engine over HTTP: submit
// queries asynchronously, stream their live progress indicators as
// Server-Sent Events, fetch results, cancel, and scrape /metrics — the
// paper's Figure 2 interface turned into a network service.
//
// Usage:
//
//	progressd [-addr 127.0.0.1:8080] [-scale 0.02] [-workers 1] [-queue 8]
//	progressd -smoke             # self-test: submit, stream, cancel, exit
//	progressd -workers 4 -smoke  # concurrency self-test: parallel queries on one engine
//
// Then, e.g.:
//
//	curl -s -X POST localhost:8080/queries -d '{"sql":"select ...","pace_ms":100}'
//	curl -N localhost:8080/queries/q1/progress
//	curl -s -X DELETE localhost:8080/queries/q1
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"progressdb"
	"progressdb/client"
	"progressdb/internal/faultinject"
	"progressdb/internal/fleet"
	"progressdb/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	shards := flag.Int("shards", 1, "engine shards; >1 serves a hash-partitioned fleet with aggregated progress")
	scale := flag.Float64("scale", 0.02, "paper workload scale loaded at startup")
	workers := flag.Int("workers", 1, "queries executed in parallel on the shared engine")
	queue := flag.Int("queue", 8, "admission queue depth (full queue → 429)")
	workMem := flag.Int("workmem", 16, "work_mem in 8KiB pages")
	update := flag.Float64("update", 10, "progress refresh period in virtual seconds")
	metrics := flag.Bool("metrics", true, "enable the engine metrics registry")
	fault := flag.String("fault", "", "chaos-testing fault spec, e.g. seed=7,readerr=0.01,transient=0.5,target=temp (see DESIGN.md)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query wall-clock deadline (0 = none); expired queries fail with a timeout error")
	sample := flag.Duration("sample-interval", time.Second, "timeseries sampler cadence behind /api/timeseries (negative disables)")
	histDepth := flag.Int("history-depth", 256, "completed-query profiles retained behind /api/history")
	keepAlive := flag.Duration("keepalive", 15*time.Second, "SSE idle keep-alive interval (negative disables pings)")
	maxInflightU := flag.Float64("max-inflight-u", 0, "in-flight remaining-work admission budget in U (0 = unlimited); excess submits are shed with 429 + Retry-After")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long SIGTERM / POST /admin/drain waits for in-flight queries before force-canceling")
	debugAddr := flag.String("debug-addr", "", "optional listen address for /debug/pprof and /debug/runtime (e.g. 127.0.0.1:6060); empty disables")
	smoke := flag.Bool("smoke", false, "run the self-test (submit, stream, cancel, dashboard + observability API checks, clean shutdown) and exit")
	flag.Parse()

	if _, err := faultinject.Parse(*fault); err != nil {
		fmt.Fprintln(os.Stderr, "progressd: -fault:", err)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "progressd: -shards must be >= 1")
		os.Exit(2)
	}

	if *smoke {
		var err error
		switch {
		case *shards > 1:
			err = runFleetSmoke(*shards)
		case *workers > 1:
			err = runConcurrentSmoke(*workers)
		default:
			err = runSmoke()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "progressd smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("progressd smoke: ok")
		return
	}

	shardCfg := progressdb.Config{
		WorkMemPages:          *workMem,
		ProgressUpdateSeconds: *update,
		// Calibrate virtual time to full-scale durations (see DESIGN.md).
		SeqPageCost:  0.8e-3 / *scale,
		RandPageCost: 6.4e-3 / *scale,
		Metrics:      *metrics,
		FaultSpec:    *fault,
	}
	if *fault != "" {
		fmt.Printf("progressd: fault injection armed: %s\n", *fault)
	}
	srvCfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		QueryTimeout:   *queryTimeout,
		SampleInterval: *sample,
		HistoryDepth:   *histDepth,
		KeepAlive:      *keepAlive,
		MaxInflightU:   *maxInflightU,
		DrainTimeout:   *drainTimeout,
	}

	var srv *server.Server
	if *shards > 1 {
		// Fleet mode: N hash-partitioned shard engines behind one
		// coordinator; -fault arms every shard's injector identically.
		fcfg := fleet.Config{Shards: *shards, Shard: shardCfg}
		fcfg.Shard.FaultSpec = ""
		if *fault != "" {
			fcfg.ShardFaultSpecs = make([]string, *shards)
			for i := range fcfg.ShardFaultSpecs {
				fcfg.ShardFaultSpecs[i] = *fault
			}
		}
		f, err := fleet.New(fcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "progressd:", err)
			os.Exit(1)
		}
		fmt.Printf("progressd: loading paper workload at scale %g across %d shards ...\n", *scale, *shards)
		if err := f.LoadPaperWorkload(*scale, false); err != nil {
			fmt.Fprintln(os.Stderr, "progressd:", err)
			os.Exit(1)
		}
		srv = server.NewFleet(f, srvCfg)
	} else {
		db := progressdb.Open(shardCfg)
		fmt.Printf("progressd: loading paper workload at scale %g ...\n", *scale)
		if err := db.LoadPaperWorkload(*scale, false); err != nil {
			fmt.Fprintln(os.Stderr, "progressd:", err)
			os.Exit(1)
		}
		srv = server.New(db, srvCfg)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "progressd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Printf("progressd: listening on http://%s (dashboard at /)\n", ln.Addr())

	// The debug surface (pprof, runtime metrics) gets its own listener so
	// it can stay loopback-only while the query API is exposed.
	var dhs *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "progressd: -debug-addr:", err)
			os.Exit(1)
		}
		dhs = &http.Server{Handler: server.DebugHandler()}
		fmt.Printf("progressd: debug surface on http://%s/debug/pprof/\n", dln.Addr())
		go dhs.Serve(dln)
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		// Graceful drain: stop admitting (new submits shed with reason
		// "draining"), let in-flight queries finish within the drain
		// deadline, force-cancel stragglers at their next safe point.
		fmt.Printf("\nprogressd: %s, draining (up to %s)\n", sig, *drainTimeout)
		dr := srv.Drain(*drainTimeout)
		fmt.Printf("progressd: drain done in %d ms (clean=%v, forced cancels=%d), shutting down\n",
			dr.WaitedMS, dr.Drained, dr.ForcedCancels)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "progressd:", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	if dhs != nil {
		dhs.Shutdown(ctx)
	}
	srv.Close()
}

// runSmoke is the CI self-test: bring the full daemon stack up on an
// ephemeral port with a tiny synthetic table, submit a paced query
// through the Go client, stream at least one SSE progress event, cancel
// it, verify the canceled transition and the metrics counters, and shut
// down cleanly.
func runSmoke() error {
	db := progressdb.Open(progressdb.Config{
		ProgressUpdateSeconds: 0.25,
		SpeedWindowSeconds:    1,
		SeqPageCost:           0.05, // stretch virtual time → many refreshes
		BufferPoolPages:       64,   // keep the scan I/O-bound
		Metrics:               true,
	})
	db.MustCreateTable("t", progressdb.Col("k", progressdb.Int), progressdb.Col("pad", progressdb.Text))
	pad := strings.Repeat("x", 100)
	for i := 0; i < 20000; i++ {
		db.MustInsert("t", int64(i), pad)
	}
	if err := db.Analyze(); err != nil {
		return err
	}
	if err := db.ColdRestart(); err != nil {
		return err
	}

	srv := server.New(db, server.Config{
		Workers:        1,
		QueueDepth:     4,
		SampleInterval: 25 * time.Millisecond, // fast sampler: the smoke run is seconds long
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl := client.New("http://" + ln.Addr().String())

	sub, err := cl.Submit(ctx, client.SubmitRequest{
		SQL: "select * from t", Name: "smoke", PaceMS: 20,
	})
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Printf("progressd smoke: submitted %s (%s)\n", sub.ID, sub.State)

	events := 0
	var last client.ProgressEvent
	err = cl.Stream(ctx, sub.ID, func(ev client.ProgressEvent) error {
		last = ev
		if !ev.Terminal() {
			events++
			if events == 1 {
				fmt.Printf("progressd smoke: first event %.1f%% done, %.0fs left\n",
					ev.Percent, ev.RemainingSeconds)
				if _, err := cl.Cancel(ctx, sub.ID); err != nil {
					return fmt.Errorf("cancel: %w", err)
				}
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if events < 1 {
		return fmt.Errorf("no progress events before terminal")
	}
	if last.State != client.StateCanceled {
		return fmt.Errorf("terminal state = %s, want canceled", last.State)
	}
	info, err := cl.Get(ctx, sub.ID)
	if err != nil {
		return err
	}
	if info.State != client.StateCanceled {
		return fmt.Errorf("snapshot state = %s, want canceled", info.State)
	}
	text, err := cl.MetricsText(ctx)
	if err != nil {
		return err
	}
	for _, want := range []string{"server_queries_admitted_total 1", "server_queries_canceled_total 1"} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}

	// Run a second query to completion so the observability plane has a
	// finished profile to serve.
	sub2, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select count(*) from t", Name: "smoke2"})
	if err != nil {
		return fmt.Errorf("submit 2: %w", err)
	}
	if err := cl.Stream(ctx, sub2.ID, func(client.ProgressEvent) error { return nil }); err != nil {
		return fmt.Errorf("stream 2: %w", err)
	}
	if err := smokeObservability(ctx, cl, "http://"+ln.Addr().String(), sub2.ID); err != nil {
		return err
	}

	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	srv.Close()

	return smokeResilience(ctx)
}

// runConcurrentSmoke proves the -workers N lift end to end on one
// shared engine: submit more paced queries than workers, observe at
// least two simultaneously in state "running", then require every SSE
// stream to be monotone with exactly one terminal event, every query to
// finish "done" with the right answer, and the engine to pass its leak
// checks after the storm.
func runConcurrentSmoke(workers int) error {
	db := progressdb.Open(progressdb.Config{
		ProgressUpdateSeconds: 0.25,
		SpeedWindowSeconds:    1,
		SeqPageCost:           0.05, // stretch virtual time → many refreshes
		BufferPoolPages:       64,   // keep the scans I/O-bound
		Metrics:               true,
	})
	db.MustCreateTable("t", progressdb.Col("k", progressdb.Int), progressdb.Col("pad", progressdb.Text))
	pad := strings.Repeat("x", 100)
	const rows = 20000
	for i := 0; i < rows; i++ {
		db.MustInsert("t", int64(i), pad)
	}
	if err := db.Analyze(); err != nil {
		return err
	}
	if err := db.ColdRestart(); err != nil {
		return err
	}

	srv := server.New(db, server.Config{
		Workers:        workers,
		QueueDepth:     2*workers + 4,
		SampleInterval: -1,
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl := client.New("http://" + ln.Addr().String())

	// More queries than workers: the surplus must queue, so the admitted
	// ones overlap while the rest wait their turn.
	n := workers + 2
	subs := make([]client.SubmitResponse, n)
	for i := range subs {
		subs[i], err = cl.Submit(ctx, client.SubmitRequest{
			SQL:  "select count(*) from t",
			Name: fmt.Sprintf("conc-%d", i), PaceMS: 30, KeepRows: true,
		})
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
	}
	fmt.Printf("progressd smoke: %d queries submitted to %d workers\n", n, workers)

	// Observe genuine overlap: poll the listing until at least two
	// queries are running at the same instant.
	maxRunning := 0
	for deadline := time.Now().Add(20 * time.Second); maxRunning < 2; {
		if time.Now().After(deadline) {
			return fmt.Errorf("never observed 2 simultaneous running queries (max %d)", maxRunning)
		}
		infos, err := cl.List(ctx)
		if err != nil {
			return fmt.Errorf("list: %w", err)
		}
		running := 0
		for _, info := range infos {
			if info.State == client.StateRunning {
				running++
			}
		}
		if running > maxRunning {
			maxRunning = running
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("progressd smoke: observed %d queries running simultaneously\n", maxRunning)

	// Every stream (replay included) must be monotone and terminate
	// exactly once, in state done, with the correct count.
	for _, sub := range subs {
		lastPct, terminals := -1.0, 0
		var last client.ProgressEvent
		err := cl.Stream(ctx, sub.ID, func(ev client.ProgressEvent) error {
			if ev.Percent < lastPct {
				return fmt.Errorf("progress regressed: %.2f%% after %.2f%%", ev.Percent, lastPct)
			}
			lastPct = ev.Percent
			if ev.Terminal() {
				terminals++
			}
			last = ev
			return nil
		})
		if err != nil {
			return fmt.Errorf("stream %s: %w", sub.ID, err)
		}
		if terminals != 1 || !last.Terminal() {
			return fmt.Errorf("%s: %d terminal events, want exactly 1 (last)", sub.ID, terminals)
		}
		if last.State != client.StateDone {
			return fmt.Errorf("%s: terminal state = %s, want done", sub.ID, last.State)
		}
		res, err := cl.Result(ctx, sub.ID)
		if err != nil {
			return fmt.Errorf("result %s: %w", sub.ID, err)
		}
		if len(res.Rows) != 1 || fmt.Sprint(res.Rows[0][0]) != fmt.Sprint(rows) {
			return fmt.Errorf("%s: count(*) = %v, want %d", sub.ID, res.Rows, rows)
		}
	}
	fmt.Printf("progressd smoke: all %d streams monotone, exactly-once-terminal, correct\n", n)

	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	srv.Close()
	if err := db.CheckLeaks(); err != nil {
		return fmt.Errorf("after storm: %w", err)
	}
	fmt.Println("progressd smoke: engine leak checks clean")
	return nil
}

// smokeResilience exercises the admission-control and drain surface on a
// dedicated server: drive it into a budget shed (429 + Retry-After with
// reason "budget"), check /healthz reports the remaining-work budget,
// then drain with a short deadline and verify the running query is
// force-canceled and further submits are shed with reason "draining".
func smokeResilience(ctx context.Context) error {
	db := progressdb.Open(progressdb.Config{
		ProgressUpdateSeconds: 0.25,
		SpeedWindowSeconds:    1,
		SeqPageCost:           0.05,
		BufferPoolPages:       64,
		Metrics:               true,
	})
	db.MustCreateTable("t", progressdb.Col("k", progressdb.Int), progressdb.Col("pad", progressdb.Text))
	pad := strings.Repeat("x", 100)
	for i := 0; i < 20000; i++ {
		db.MustInsert("t", int64(i), pad)
	}
	if err := db.Analyze(); err != nil {
		return err
	}
	const sql = "select * from t"
	// Size the budget to fit exactly one scan: the first submit is
	// admitted, the second is shed while the first still has most of its
	// work outstanding.
	costU, err := db.EstimateCostU(sql)
	if err != nil {
		return fmt.Errorf("estimate: %w", err)
	}
	srv := server.New(db, server.Config{
		Workers:        1,
		QueueDepth:     4,
		MaxInflightU:   1.5 * costU,
		SampleInterval: -1,
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	cl := client.New("http://" + ln.Addr().String())

	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: sql, Name: "shed-victim", PaceMS: 50})
	if err != nil {
		return fmt.Errorf("submit paced: %w", err)
	}
	_, err = cl.Submit(ctx, client.SubmitRequest{SQL: sql, Name: "shed-me"})
	if err == nil {
		return fmt.Errorf("second submit admitted; want budget shed (budget %.0f U, cost %.0f U)", 1.5*costU, costU)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		return fmt.Errorf("second submit: %w; want 429", err)
	}
	if ae.Reason != client.ShedBudget {
		return fmt.Errorf("shed reason = %q, want %q", ae.Reason, client.ShedBudget)
	}
	if ae.RetryAfterSeconds < 1 {
		return fmt.Errorf("shed carried Retry-After %.2fs, want >= 1s", ae.RetryAfterSeconds)
	}
	fmt.Printf("progressd smoke: budget shed ok (429 reason=%s retry-after=%.0fs)\n", ae.Reason, ae.RetryAfterSeconds)

	h, err := cl.Health(ctx)
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if h.InflightQueries != 1 || h.MaxInflightU != 1.5*costU {
		return fmt.Errorf("healthz budget: inflight_queries=%d max_inflight_u=%.0f, want 1 and %.0f",
			h.InflightQueries, h.MaxInflightU, 1.5*costU)
	}

	// Drain with a deadline far shorter than the paced query: it must be
	// force-canceled, exactly once, and the server must stop admitting.
	dr, err := cl.Drain(ctx, 200*time.Millisecond)
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if dr.Drained || dr.ForcedCancels != 1 {
		return fmt.Errorf("drain: clean=%v forced=%d, want forced cancel of the paced query", dr.Drained, dr.ForcedCancels)
	}
	info, err := cl.Get(ctx, sub.ID)
	if err != nil {
		return err
	}
	if info.State != client.StateCanceled {
		return fmt.Errorf("drained query state = %s, want canceled", info.State)
	}
	if h, err = cl.Health(ctx); err != nil || h.Status != "draining" {
		return fmt.Errorf("healthz after drain: status=%q err=%w, want draining", h.Status, err)
	}
	_, err = cl.Submit(ctx, client.SubmitRequest{SQL: sql, Name: "too-late"})
	if client.ShedReason(err) != client.ShedDraining {
		return fmt.Errorf("submit after drain: %w, want shed reason %q", err, client.ShedDraining)
	}
	text, err := cl.MetricsText(ctx)
	if err != nil {
		return err
	}
	for _, want := range []string{
		`server_shed_total{reason="budget"} 1`,
		`server_shed_total{reason="draining"} 1`,
		"server_drains_total 1",
		"server_drain_forced_cancels_total 1",
		"server_draining 1",
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}
	fmt.Printf("progressd smoke: drain ok (forced=%d in %d ms), admission closed\n", dr.ForcedCancels, dr.WaitedMS)

	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	srv.Close()
	return nil
}

// runFleetSmoke is the sharded-serving CI self-test: bring up an
// n-shard fleet behind the HTTP server, run a paced scan whose SSE
// events must carry per-shard breakdowns with monotone global progress,
// cancel it, run a second query to completion and verify the merged
// result, then check the coordinator's fleet_* metrics and the
// dashboard's fleet-mode config.
func runFleetSmoke(n int) error {
	f, err := fleet.New(fleet.Config{
		Shards: n,
		Shard: progressdb.Config{
			ProgressUpdateSeconds: 0.25,
			SpeedWindowSeconds:    1,
			SeqPageCost:           0.05, // stretch virtual time → many refreshes
			BufferPoolPages:       64,   // keep the scans I/O-bound
		},
	})
	if err != nil {
		return err
	}
	if err := f.CreateTable("t", "k",
		progressdb.Col("k", progressdb.Int), progressdb.Col("pad", progressdb.Text)); err != nil {
		return err
	}
	pad := strings.Repeat("x", 100)
	const rows = 20000
	for i := 0; i < rows; i++ {
		if err := f.Insert("t", int64(i), pad); err != nil {
			return err
		}
	}
	if err := f.Analyze(); err != nil {
		return err
	}
	if err := f.ColdRestart(); err != nil {
		return err
	}

	srv := server.NewFleet(f, server.Config{
		Workers:        1,
		QueueDepth:     4,
		SampleInterval: 25 * time.Millisecond,
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	base := "http://" + ln.Addr().String()
	cl := client.New(base)

	sub, err := cl.Submit(ctx, client.SubmitRequest{
		SQL: "select * from t", Name: "fleet-smoke", PaceMS: 20,
	})
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Printf("progressd smoke: submitted %s (%s) across %d shards\n", sub.ID, sub.State, n)

	events, withShards := 0, 0
	lastPct := -1.0
	var last client.ProgressEvent
	err = cl.Stream(ctx, sub.ID, func(ev client.ProgressEvent) error {
		last = ev
		if ev.Percent < lastPct {
			return fmt.Errorf("progress regressed: %.2f%% after %.2f%%", ev.Percent, lastPct)
		}
		lastPct = ev.Percent
		if len(ev.Shards) > 0 {
			withShards++
			for _, sp := range ev.Shards {
				if sp.Shard < 0 || sp.Shard >= n {
					return fmt.Errorf("event %d names shard %d of %d", ev.Seq, sp.Shard, n)
				}
			}
		}
		if !ev.Terminal() {
			events++
			if events == 1 {
				fmt.Printf("progressd smoke: first event %.1f%% done, %d shard breakdowns\n",
					ev.Percent, len(ev.Shards))
				if _, err := cl.Cancel(ctx, sub.ID); err != nil {
					return fmt.Errorf("cancel: %w", err)
				}
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if events < 1 {
		return fmt.Errorf("no progress events before terminal")
	}
	if withShards < 1 {
		return fmt.Errorf("no progress event carried a per-shard breakdown")
	}
	if last.State != client.StateCanceled {
		return fmt.Errorf("terminal state = %s, want canceled", last.State)
	}

	// Second query runs to completion; its merged result must cover every
	// shard's partition.
	sub2, err := cl.Submit(ctx, client.SubmitRequest{
		SQL: "select count(*) from t", Name: "fleet-smoke2", KeepRows: true,
	})
	if err != nil {
		return fmt.Errorf("submit 2: %w", err)
	}
	if err := cl.Stream(ctx, sub2.ID, func(client.ProgressEvent) error { return nil }); err != nil {
		return fmt.Errorf("stream 2: %w", err)
	}
	res, err := cl.Result(ctx, sub2.ID)
	if err != nil {
		return fmt.Errorf("result 2: %w", err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return fmt.Errorf("count(*) result shape %dx%d", len(res.Rows), len(res.Rows))
	}
	if got := fmt.Sprint(res.Rows[0][0]); got != fmt.Sprint(rows) {
		return fmt.Errorf("count(*) = %s, want %d", got, rows)
	}
	fmt.Printf("progressd smoke: merged count(*) = %d over %d shards\n", rows, n)

	// Coordinator metrics and the dashboard's fleet-mode config.
	text, err := cl.MetricsText(ctx)
	if err != nil {
		return err
	}
	for _, want := range []string{
		fmt.Sprintf("fleet_shards %d", n),
		"fleet_queries_total 2",
		fmt.Sprintf("fleet_subqueries_total %d", 2*n),
		"fleet_cancels_propagated_total 1",
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}
	cfgBody, err := httpGet(ctx, base+"/api/dashboard/config")
	if err != nil {
		return fmt.Errorf("dashboard config: %w", err)
	}
	var dcfg client.DashboardConfig
	if err := json.Unmarshal([]byte(cfgBody), &dcfg); err != nil {
		return fmt.Errorf("dashboard config: %w", err)
	}
	if dcfg.Shards != n {
		return fmt.Errorf("dashboard config shards = %d, want %d", dcfg.Shards, n)
	}
	fmt.Println("progressd smoke: fleet metrics + dashboard config ok")

	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	srv.Close()
	return nil
}

// smokeObservability exercises the observability plane end to end: the
// embedded dashboard page, the timeseries and history APIs (via the
// typed client), and the pprof/runtime debug surface.
func smokeObservability(ctx context.Context, cl *client.Client, base, doneID string) error {
	// Embedded dashboard: served at /, self-contained HTML.
	page, err := httpGet(ctx, base+"/")
	if err != nil {
		return fmt.Errorf("dashboard: %w", err)
	}
	if !strings.Contains(page, "<title>progressd</title>") {
		return fmt.Errorf("dashboard page missing title")
	}
	fmt.Printf("progressd smoke: dashboard served (%d bytes)\n", len(page))

	// Timeseries: the 25 ms sampler has been running the whole smoke;
	// give it a beat and require real windows for engine + server series.
	time.Sleep(100 * time.Millisecond)
	tsr, err := cl.Timeseries(ctx, client.TimeseriesRequest{WindowSeconds: 60})
	if err != nil {
		return fmt.Errorf("timeseries: %w", err)
	}
	withPoints := 0
	for _, s := range tsr.Series {
		if len(s.Points) > 0 {
			withPoints++
		}
	}
	if withPoints < 10 {
		return fmt.Errorf("timeseries: %d series with points, want >= 10", withPoints)
	}
	fmt.Printf("progressd smoke: timeseries serving %d series\n", withPoints)

	// History: both queries are terminal; the completed one must replay
	// its full profile with segments.
	hr, err := cl.History(ctx, "", 0)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	if hr.Retained < 2 {
		return fmt.Errorf("history retained = %d, want >= 2", hr.Retained)
	}
	prof, err := cl.HistoryProfile(ctx, doneID)
	if err != nil {
		return fmt.Errorf("history profile: %w", err)
	}
	if len(prof.Events) == 0 || prof.Query.State != client.StateDone {
		return fmt.Errorf("history profile incomplete: state %s, %d events", prof.Query.State, len(prof.Events))
	}
	fmt.Printf("progressd smoke: history profile %s: %d events, %d segments\n",
		doneID, len(prof.Events), len(prof.Segments))

	// Debug surface on its own listener, like -debug-addr mounts it.
	dln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	dhs := &http.Server{Handler: server.DebugHandler()}
	go dhs.Serve(dln)
	defer dhs.Close()
	dbase := "http://" + dln.Addr().String()
	if _, err := httpGet(ctx, dbase+"/debug/pprof/cmdline"); err != nil {
		return fmt.Errorf("pprof cmdline: %w", err)
	}
	if body, err := httpGet(ctx, dbase+"/debug/runtime"); err != nil {
		return fmt.Errorf("runtime metrics: %w", err)
	} else if !strings.Contains(body, "/gc/") {
		return fmt.Errorf("runtime metrics dump missing /gc/ entries")
	}
	fmt.Println("progressd smoke: debug surface ok")
	return nil
}

// httpGet fetches a URL, requiring a 200, and returns the body.
func httpGet(ctx context.Context, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return sb.String(), nil
}

// Command datagen generates the paper's Table 1 data set at a chosen
// scale and prints the table of cardinalities and sizes.
//
// With -partitions N it instead emits N hash-partitioned files per table
// (<table>.p<i>.tbl under -out) that fleet shard bootstrap consumes: each
// row lands in the file of the shard its partition key hashes to, so the
// union of the N files is exactly the unpartitioned data set.
//
// Usage:
//
//	datagen [-scale 0.05] [-correlated] [-seed 0]
//	datagen -partitions 4 [-out dir] [-scale 0.05] [-correlated] [-seed 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"progressdb/internal/catalog"
	"progressdb/internal/storage"
	"progressdb/internal/vclock"
	"progressdb/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.05, "fraction of the paper's Table 1 cardinalities (1.0 = 0.15M/1.5M/6M rows)")
	correlated := flag.Bool("correlated", false, "use the Q3 correlated-orders variant")
	seed := flag.Int64("seed", 0, "generator seed")
	partitions := flag.Int("partitions", 0, "emit N hash-partitioned table files instead of loading in-memory")
	out := flag.String("out", ".", "output directory for -partitions files")
	flag.Parse()

	cfg := workload.Config{Scale: *scale, Seed: *seed, CorrelatedOrders: *correlated}

	if *partitions > 0 {
		ds, err := workload.WritePartitionFiles(*out, cfg, *partitions)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d partitions of %d customer / %d orders / %d lineitem rows to %s\n",
			*partitions, ds.Customers, ds.Orders, ds.Lineitems, *out)
		for table, key := range workload.PartitionKeys() {
			fmt.Printf("  %-18s hashed on %s\n", table, key)
		}
		return
	}

	clock := vclock.New(vclock.DefaultCosts(), nil)
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(clock), 4096))
	ds, err := workload.Load(cat, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	tbl, err := ds.Table1(cat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Println("Table 1. Test data set.")
	fmt.Print(tbl)
	if *correlated {
		fmt.Println("(orders uses the Q3 correlated fanout: nationkey 0-9 -> 20 orders, 10-19 -> 0, 20-24 -> 10)")
	}
}

// Command datagen generates the paper's Table 1 data set at a chosen
// scale and prints the table of cardinalities and sizes.
//
// Usage:
//
//	datagen [-scale 0.05] [-correlated] [-seed 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"progressdb/internal/catalog"
	"progressdb/internal/storage"
	"progressdb/internal/vclock"
	"progressdb/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.05, "fraction of the paper's Table 1 cardinalities (1.0 = 0.15M/1.5M/6M rows)")
	correlated := flag.Bool("correlated", false, "use the Q3 correlated-orders variant")
	seed := flag.Int64("seed", 0, "generator seed")
	flag.Parse()

	clock := vclock.New(vclock.DefaultCosts(), nil)
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(clock), 4096))
	ds, err := workload.Load(cat, workload.Config{
		Scale: *scale, Seed: *seed, CorrelatedOrders: *correlated,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	tbl, err := ds.Table1(cat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Println("Table 1. Test data set.")
	fmt.Print(tbl)
	if *correlated {
		fmt.Println("(orders uses the Q3 correlated fanout: nationkey 0-9 -> 20 orders, 10-19 -> 0, 20-24 -> 10)")
	}
}

// Command pgsh is a small interactive shell over the engine: type SPJ
// SQL and watch the progress indicator while it runs.
//
//	$ go run ./cmd/pgsh -scale 0.01
//	pgsh> \tables
//	pgsh> \explain select * from lineitem
//	pgsh> select c.custkey, o.orderkey from customer c, orders o where c.custkey = o.custkey
//
// Commands: \tables, \explain <sql>, \metrics (engine metrics snapshot),
// \cold (empty the buffer pool), \io <start> <end> <factor> / \cpu ...
// (interference), \help, \q. SQL statements may be prefixed with EXPLAIN
// or EXPLAIN ANALYZE.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"progressdb"
)

func main() {
	scale := flag.Float64("scale", 0.01, "paper workload scale (0 = start empty)")
	workMem := flag.Int("workmem", 16, "work_mem in pages")
	update := flag.Float64("update", 10, "progress refresh in virtual seconds")
	maxRows := flag.Int("rows", 10, "result rows to print")
	flag.Parse()

	db := progressdb.Open(progressdb.Config{
		WorkMemPages:          *workMem,
		ProgressUpdateSeconds: *update,
		SeqPageCost:           0.8e-3 / maxf(*scale, 0.01),
		RandPageCost:          6.4e-3 / maxf(*scale, 0.01),
		Metrics:               true,
	})
	if *scale > 0 {
		fmt.Printf("loading paper workload at scale %g ...\n", *scale)
		if err := db.LoadPaperWorkload(*scale, false); err != nil {
			fmt.Fprintln(os.Stderr, "pgsh:", err)
			os.Exit(1)
		}
	}
	fmt.Println(`type SPJ SQL, or \help`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("pgsh> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case line == `\q` || line == `\quit`:
			return
		case line == `\help`:
			fmt.Println(`\tables            list tables
\explain <sql>     show plan and segments
\analyze <sql>     run and show per-segment estimated vs actual
\metrics           engine metrics snapshot (Prometheus text format)
\cold              empty the buffer pool
\io <s> <e> <f>    4-arg: I/O interference from s to e (virtual sec), factor f
\cpu <s> <e> <f>   CPU interference
\clear             remove interference
\q                 quit
explain [analyze] <sql>   plan only, or run + annotated plan with actuals
anything else      run as SQL with a live progress indicator`)
		case line == `\tables`:
			for _, q := range []string{"customer", "orders", "lineitem", "customer_subset1", "customer_subset2"} {
				if _, err := db.Explain("select * from " + q); err == nil {
					fmt.Println(" ", q)
				}
			}
		case line == `\metrics`:
			fmt.Print(db.MetricsText())
		case line == `\cold`:
			if err := db.ColdRestart(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("buffer pool cleared")
			}
		case line == `\clear`:
			db.ClearInterference()
			fmt.Println("interference cleared")
		case strings.HasPrefix(line, `\io `) || strings.HasPrefix(line, `\cpu `):
			kind := "io"
			rest := strings.TrimPrefix(line, `\io `)
			if strings.HasPrefix(line, `\cpu `) {
				kind = "cpu"
				rest = strings.TrimPrefix(line, `\cpu `)
			}
			parts := strings.Fields(rest)
			if len(parts) != 3 {
				fmt.Println("usage: \\" + kind + " <start> <end> <factor>")
				continue
			}
			s, err1 := strconv.ParseFloat(parts[0], 64)
			e, err2 := strconv.ParseFloat(parts[1], 64)
			f, err3 := strconv.ParseFloat(parts[2], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				fmt.Println("bad numbers")
				continue
			}
			if err := db.SetInterference(kind, db.Now()+s, db.Now()+e, f); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%s x%g over [now+%g, now+%g]\n", kind, f, s, e)
			}
		case strings.HasPrefix(line, `\explain `):
			out, err := db.Explain(strings.TrimPrefix(line, `\explain `))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(out)
		case strings.HasPrefix(line, `\analyze `):
			res, table, err := db.ExecAnalyze(strings.TrimPrefix(line, `\analyze `))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(table)
			fmt.Printf("(%.1f virtual seconds)\n", res.VirtualSeconds)
		case strings.HasPrefix(line, `\`):
			fmt.Println("unknown command; try \\help")
		case hasKeywordPrefix(line, "explain", "analyze"):
			res, tree, err := db.ExplainAnalyze(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(tree)
			fmt.Printf("(%.1f virtual seconds)\n", res.VirtualSeconds)
		case hasKeywordPrefix(line, "explain"):
			out, err := db.Explain(stripKeywords(line, "explain"))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(out)
		default:
			runSQL(db, line, *maxRows)
		}
	}
}

func runSQL(db *progressdb.DB, sql string, maxRows int) {
	res, err := db.Exec(sql, func(r progressdb.Report) {
		fmt.Printf("  ... %5.1f%% done, est %s left (%.0f U at %.0f U/s)\n",
			r.Percent, short(r.RemainingSeconds), r.EstimatedCostU, r.SpeedU)
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(strings.Join(res.Columns, " | "))
	for i, row := range res.Rows {
		if i >= maxRows {
			fmt.Printf("... (%d more rows)\n", len(res.Rows)-maxRows)
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("%d rows in %.1f virtual seconds\n", res.RowCount(), res.VirtualSeconds)
}

// hasKeywordPrefix reports whether line starts with the given keywords,
// case-insensitively and whitespace-separated.
func hasKeywordPrefix(line string, kws ...string) bool {
	fields := strings.Fields(line)
	if len(fields) <= len(kws) {
		return false
	}
	for i, kw := range kws {
		if !strings.EqualFold(fields[i], kw) {
			return false
		}
	}
	return true
}

// stripKeywords removes the leading keywords from line, returning the rest.
func stripKeywords(line string, kws ...string) string {
	rest := strings.TrimSpace(line)
	for range kws {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) < 2 {
			return ""
		}
		rest = strings.TrimSpace(fields[1])
	}
	return rest
}

func short(sec float64) string {
	if sec > 1e8 {
		return "?"
	}
	return fmt.Sprintf("%.0fs", sec)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

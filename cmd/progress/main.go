// Command progress runs one query over the paper's workload with a live
// progress indicator — the text form of the paper's Figure 2 interface.
//
// Usage:
//
//	progress [-scale 0.02] [-q 2]            # run paper query Q2
//	progress [-scale 0.02] -sql "select ..." # run arbitrary SPJ SQL
//	progress -q 2 -explain                   # show the plan and segments
//	progress -q 2 -io-at 190 -io-for 695     # start a 4x I/O load at t=190
//	progress -q 2 -json                      # one JSON line per refresh (progressd's SSE schema)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"progressdb"
	"progressdb/client"
)

func main() {
	scale := flag.Float64("scale", 0.02, "workload scale")
	q := flag.Int("q", 2, "paper query number (1-5), ignored when -sql is set")
	sqlFlag := flag.String("sql", "", "SQL to run instead of a paper query")
	explain := flag.Bool("explain", false, "print the plan and segment decomposition, then exit")
	workMem := flag.Int("workmem", 16, "work_mem in 8KiB pages (small values force Grace hash joins)")
	ioAt := flag.Float64("io-at", -1, "start 4x I/O interference at this virtual second")
	ioFor := flag.Float64("io-for", 600, "I/O interference duration")
	cpuAt := flag.Float64("cpu-at", -1, "start 4x CPU interference at this virtual second")
	cpuFor := flag.Float64("cpu-for", 600, "CPU interference duration")
	update := flag.Float64("update", 10, "progress refresh period in virtual seconds")
	metrics := flag.Bool("metrics", false, "print the engine metrics snapshot after the run")
	jsonOut := flag.Bool("json", false, "emit each refresh as one JSON line on stdout (the progressd SSE schema); status goes to stderr")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "progress:", err)
		os.Exit(1)
	}
	// In -json mode stdout carries only machine-readable lines.
	status := os.Stdout
	if *jsonOut {
		status = os.Stderr
	}

	db := progressdb.Open(progressdb.Config{
		WorkMemPages:          *workMem,
		ProgressUpdateSeconds: *update,
		// Calibrate virtual time to full-scale durations (see DESIGN.md).
		SeqPageCost:  0.8e-3 / *scale,
		RandPageCost: 6.4e-3 / *scale,
		Metrics:      *metrics,
	})
	sql := *sqlFlag
	if sql == "" {
		var err error
		sql, err = progressdb.PaperQuery(*q)
		if err != nil {
			die(err)
		}
	}
	fmt.Fprintf(status, "loading paper workload at scale %g ...\n", *scale)
	if err := db.LoadPaperWorkload(*scale, *q == 3 && *sqlFlag == ""); err != nil {
		die(err)
	}
	fmt.Fprintf(status, "SQL: %s\n\n", sql)

	if *explain {
		ex, err := db.Explain(sql)
		if err != nil {
			die(err)
		}
		fmt.Println(ex)
		return
	}

	if *ioAt >= 0 {
		if err := db.SetInterference("io", db.Now()+*ioAt, db.Now()+*ioAt+*ioFor, 4); err != nil {
			die(err)
		}
	} else if *cpuAt >= 0 {
		if err := db.SetInterference("cpu", db.Now()+*cpuAt, db.Now()+*cpuAt+*cpuFor, 4); err != nil {
			die(err)
		}
	}

	if err := db.ColdRestart(); err != nil {
		die(err)
	}
	name := fmt.Sprintf("Query %d", *q)
	if *sqlFlag != "" {
		name = "Query"
	}
	enc := json.NewEncoder(os.Stdout)
	seq := 0
	onProgress := func(r progressdb.Report) {
		if *jsonOut {
			seq++
			ev := client.EventFromReport("", r)
			ev.Seq = seq
			if err := enc.Encode(ev); err != nil {
				die(err)
			}
			return
		}
		fmt.Println("----------------------------------------")
		fmt.Print(progressdb.FormatReport(name, r))
	}
	res, err := db.ExecDiscard(sql, onProgress)
	if err != nil {
		die(err)
	}
	if !*jsonOut {
		fmt.Println("========================================")
	}
	fmt.Fprintf(status, "done: %d progress refreshes over %.1f virtual seconds\n",
		len(res.History), res.VirtualSeconds)
	if *metrics {
		fmt.Fprintln(status)
		fmt.Fprint(status, db.MetricsText())
	}
}

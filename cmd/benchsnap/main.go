// Command benchsnap converts `go test -bench` output on stdin into a
// stable JSON snapshot on stdout. The repository commits the result
// (e.g. BENCH_obs.json, via `make bench-snapshot`) so the observability
// layer's overhead — ops/s, ns/tuple, allocs/op, enabled vs disabled —
// has a reviewed baseline: a PR that regresses the hot path shows up as
// a diff in a checked-in file, not a memory of what the numbers used to
// be.
//
// Usage:
//
//	go test . -bench 'BenchmarkObs' -benchmem | benchsnap > BENCH_obs.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark line, parsed.
type Bench struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// OpsPerSec is derived: 1e9 / NsPerOp.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Metrics holds every other reported unit (allocs/op, B/op,
	// ns/tuple, custom b.ReportMetric units) keyed by unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the file layout.
type Snapshot struct {
	// GoVersion and GOARCH pin the toolchain the numbers came from;
	// compare like with like.
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Benches   []Bench `json:"benchmarks"`
}

func main() {
	snap := Snapshot{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			snap.Benches = append(snap.Benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if len(snap.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark lines on stdin")
		os.Exit(1)
	}
	sort.Slice(snap.Benches, func(i, j int) bool { return snap.Benches[i].Name < snap.Benches[j].Name })
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

// parseLine parses one `BenchmarkX-8  N  v unit  v unit ...` line.
func parseLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Bench{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			if v > 0 {
				b.OpsPerSec = 1e9 / v
			}
			continue
		}
		b.Metrics[unit] = v
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, b.NsPerOp > 0
}

// Command progresslint is the engine's multichecker: it loads the
// module, runs every analyzer in internal/analysis/checks over the
// requested packages, and exits non-zero if any invariant is violated.
// It is the CI teeth behind DESIGN.md §7 ("Checked invariants").
//
// Usage:
//
//	progresslint [-json] [-list] [-sharedstate file] [-assert-guarded list] [packages...]
//
// With no package patterns it checks ./... from the current module.
// Violations are printed one per line as file:line:col: [analyzer]
// message; -json emits them as a stable JSON array instead (schema:
// internal/analysis.JSONDiagnostic, documented in the README).
// -sharedstate additionally writes the sharedstate analyzer's
// concurrency-readiness inventory — every package-level variable and
// mutable struct in the engine-core packages, with its guard situation
// — as JSON to the given file ("-" for stdout): the machine-readable
// worklist for the multi-core engine (ROADMAP item 1).
// -assert-guarded takes a comma-separated list of pkg.Type entries
// (e.g. storage.Disk,catalog.Catalog) and fails the run if any listed
// struct is absent from the inventory or still unguarded — CI's proof
// that the multi-core refactor's newly latched structs stay latched.
//
// Suppress a finding with //lint:ignore <analyzer> <reason> on the
// offending line or the line above; the suppression inventory is
// itself audited (unknown analyzer names, missing reasons, and
// suppressions that no longer suppress anything are reported).
//
// Exit codes: 0 clean, 1 findings, 2 load/internal failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"progressdb/internal/analysis"
	"progressdb/internal/analysis/checks"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (stable schema)")
	list := flag.Bool("list", false, "list analyzers and exit")
	sharedstateOut := flag.String("sharedstate", "",
		`write the sharedstate concurrency-readiness report (JSON) to this file ("-" for stdout)`)
	assertGuarded := flag.String("assert-guarded", "",
		"comma-separated pkg.Type list that must appear guarded in the sharedstate inventory (e.g. storage.Disk,catalog.Catalog)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: progresslint [-json] [-list] [-sharedstate file] [-assert-guarded list] [packages...]\n\n"+
				"Checks the module's engine invariants (DESIGN.md §7).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := checks.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := analysis.ModuleRoot("")
	if err != nil {
		fatal(err)
	}
	mod, err := analysis.Load(root, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	diags, state, err := analysis.RunWithState(mod.Fset, mod.Packages, analyzers)
	if err != nil {
		fatal(err)
	}

	if *sharedstateOut != "" {
		if err := writeSharedstate(state, *sharedstateOut, root); err != nil {
			fatal(err)
		}
	}
	if *assertGuarded != "" {
		if err := checkGuarded(state, *assertGuarded); err != nil {
			fmt.Fprintln(os.Stderr, "progresslint:", err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		data, err := analysis.DiagnosticsJSON(diags)
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.Write(data); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "progresslint: %d finding(s) in %d package(s)\n",
			len(diags), len(mod.Packages))
		os.Exit(1)
	}
}

// writeSharedstate serializes the concurrency-readiness inventory the
// sharedstate analyzer left in the run's shared state. Positions are
// relativized to the module root and empty sections encode as [] so
// the artifact is stable across checkouts and safe to index.
func writeSharedstate(state *analysis.State, path, root string) error {
	rep, ok := checks.SharedStateReport(state)
	if !ok {
		return fmt.Errorf("sharedstate report requested but the analyzer saw no " +
			"engine-core package: include the module root packages in the run")
	}
	for i := range rep.PackageVars {
		rep.PackageVars[i].Pos = strings.TrimPrefix(rep.PackageVars[i].Pos, root+string(os.PathSeparator))
	}
	for i := range rep.Structs {
		rep.Structs[i].Pos = strings.TrimPrefix(rep.Structs[i].Pos, root+string(os.PathSeparator))
	}
	if rep.PackageVars == nil {
		rep.PackageVars = []checks.VarSite{}
	}
	if rep.Structs == nil {
		rep.Structs = []checks.StructSite{}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// checkGuarded enforces -assert-guarded: every listed pkg.Type (package
// matched by its last path element) must be present in the sharedstate
// inventory with at least one mutex guard and not flagged unguarded.
func checkGuarded(state *analysis.State, list string) error {
	rep, ok := checks.SharedStateReport(state)
	if !ok {
		return fmt.Errorf("-assert-guarded needs the sharedstate analyzer's inventory: " +
			"include the engine-core packages in the run")
	}
	var bad []string
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		dot := strings.LastIndex(entry, ".")
		if dot < 1 || dot == len(entry)-1 {
			return fmt.Errorf("-assert-guarded entry %q: want pkg.Type", entry)
		}
		pkg, typ := entry[:dot], entry[dot+1:]
		found := false
		for _, s := range rep.Structs {
			if s.Type != typ || (s.Package != pkg && !strings.HasSuffix(s.Package, "/"+pkg)) {
				continue
			}
			found = true
			if s.Unguarded || len(s.Guards) == 0 {
				bad = append(bad, fmt.Sprintf("%s is unguarded (%s)", entry, s.Pos))
			}
			break
		}
		if !found {
			bad = append(bad, fmt.Sprintf("%s not found in the sharedstate inventory", entry))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("assert-guarded failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "progresslint:", err)
	os.Exit(2)
}

// Command progresslint is the engine's multichecker: it loads the
// module, runs every analyzer in internal/analysis/checks over the
// requested packages, and exits non-zero if any invariant is violated.
// It is the CI teeth behind DESIGN.md §7 ("Checked invariants").
//
// Usage:
//
//	progresslint [-json] [-list] [packages...]
//
// With no package patterns it checks ./... from the current module.
// Violations are printed one per line as file:line:col: [analyzer]
// message. Suppress a finding with //lint:ignore <analyzer> <reason>
// on the offending line or the line above; the suppression inventory
// is itself audited (unknown analyzer names, missing reasons, and
// suppressions that no longer suppress anything are reported).
//
// Exit codes: 0 clean, 1 findings, 2 load/internal failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"progressdb/internal/analysis"
	"progressdb/internal/analysis/checks"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: progresslint [-json] [-list] [packages...]\n\n"+
				"Checks the module's engine invariants (DESIGN.md §7).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := checks.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := analysis.ModuleRoot("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "progresslint:", err)
		os.Exit(2)
	}
	mod, err := analysis.Load(root, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "progresslint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(mod.Fset, mod.Packages, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "progresslint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "progresslint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "progresslint: %d finding(s) in %d package(s)\n",
			len(diags), len(mod.Packages))
		os.Exit(1)
	}
}

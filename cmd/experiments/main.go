// Command experiments regenerates every table and figure of the paper's
// evaluation section: Table 1, Figures 4–7 (Q1), 9–16 (Q2 unloaded and
// under I/O interference), 17 (Q3), 18 (Q4), 19–20 (Q5), plus the <1%
// overhead measurement. Series are written as CSV files and rendered as
// ASCII plots on stdout.
//
// Usage:
//
//	experiments [-scale 0.02] [-outdir results] [-only fig09] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"progressdb/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 0.02, "workload scale (1.0 = the paper's Table 1)")
	seed := flag.Int64("seed", 1, "data generator seed")
	outdir := flag.String("outdir", "results", "directory for CSV output (empty = no CSV)")
	only := flag.String("only", "", "run a single experiment id (e.g. fig09)")
	quiet := flag.Bool("quiet", false, "skip ASCII plots")
	width := flag.Int("width", 72, "ASCII plot width")
	height := flag.Int("height", 14, "ASCII plot height")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			die(err)
		}
	}

	runner := harness.Runner{Scale: *scale, Seed: *seed}
	sess := harness.NewSession(runner)

	// Table 1.
	if *only == "" || *only == "table1" {
		tbl, err := runner.Table1()
		if err != nil {
			die(err)
		}
		fmt.Println("=== Table 1. Test data set ===")
		fmt.Print(tbl)
		fmt.Println()
		if *outdir != "" {
			if err := os.WriteFile(filepath.Join(*outdir, "table1.txt"), []byte(tbl), 0o644); err != nil {
				die(err)
			}
		}
	}

	for _, e := range harness.Experiments {
		if *only != "" && e.ID != *only {
			continue
		}
		fig, err := sess.Figure(e)
		if err != nil {
			die(fmt.Errorf("%s: %w", e.ID, err))
		}
		res, err := sess.Result(e)
		if err != nil {
			die(err)
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		fmt.Printf("query Q%d, %s, actual duration %.0f vsec, initial estimate %.0f U, exact cost %.0f U\n",
			e.Query, res.Scenario, res.ActualSeconds, res.InitialEstU, res.ExactCostU)
		if !*quiet {
			fmt.Print(fig.ASCII(*width, *height))
		}
		fmt.Println()
		if *outdir != "" {
			path := filepath.Join(*outdir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				die(err)
			}
		}
	}

	// Overhead (the paper's "<1% penalty" claim). Real wall time, so the
	// exact figure is machine-dependent.
	if *only == "" || *only == "overhead" {
		withInd, withoutInd, err := runner.Overhead(2, 3)
		if err != nil {
			die(err)
		}
		pct := 100 * (withInd - withoutInd) / withoutInd
		fmt.Println("=== Overhead (paper claims < 1%) ===")
		fmt.Printf("Q2 x3, wall time with indicator %.4fs, without %.4fs, overhead %.2f%%\n",
			withInd, withoutInd, pct)
		if *outdir != "" {
			line := fmt.Sprintf("with,without,overhead_pct\n%.6f,%.6f,%.3f\n", withInd, withoutInd, pct)
			if err := os.WriteFile(filepath.Join(*outdir, "overhead.csv"), []byte(line), 0o644); err != nil {
				die(err)
			}
		}
	}
}

// Package progressdb is a small single-node SQL engine with a
// continuously refined query progress indicator, reproducing "Toward a
// Progress Indicator for Database Queries" (Luo, Naughton, Ellmann,
// Watzke — SIGMOD 2004).
//
// The engine executes select-project-join SQL over simulated storage with
// a deterministic virtual clock. While a query runs, a progress indicator
// divides its plan into pipelined segments, measures work in U (pages of
// bytes processed at segment boundaries), refines the cost estimate from
// observed cardinalities, monitors execution speed over a trailing
// window, and reports percent done and estimated remaining time — the
// paper's techniques, end to end.
//
// Quick start:
//
//	db := progressdb.Open(progressdb.Config{})
//	db.MustCreateTable("t", progressdb.Col("k", progressdb.Int), progressdb.Col("v", progressdb.Text))
//	db.MustInsert("t", int64(1), "hello")
//	db.Analyze()
//	res, _ := db.Exec("select * from t", func(p progressdb.Report) {
//		fmt.Printf("%.0f%% done, %.0fs left\n", p.Percent, p.RemainingSeconds)
//	})
package progressdb

import (
	"context"
	"fmt"
	"io"

	"progressdb/internal/catalog"
	"progressdb/internal/core"
	"progressdb/internal/exec"
	"progressdb/internal/faultinject"
	"progressdb/internal/obs"
	"progressdb/internal/optimizer"
	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/sqlparser"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
	"progressdb/internal/workload"
)

// ColumnType is a column's data type.
type ColumnType int

// Column types.
const (
	Int ColumnType = iota
	Float
	Text
)

// Column defines one table column.
type Column struct {
	Name string
	Type ColumnType
}

// Col is shorthand for Column{name, typ}.
func Col(name string, typ ColumnType) Column { return Column{Name: name, Type: typ} }

// Config configures an engine instance.
type Config struct {
	// BufferPoolPages sizes the page cache (default 2048 = 16 MiB).
	BufferPoolPages int
	// WorkMemPages is the per-operator memory budget (default 2048).
	// Small values force Grace hash joins and external sorts.
	WorkMemPages int
	// SeqPageCost, RandPageCost, CPUTupleCost override the virtual
	// clock's base costs in seconds per unit (defaults are calibrated to
	// a 2004-era disk; see internal/vclock).
	SeqPageCost, RandPageCost, CPUTupleCost float64
	// ProgressUpdateSeconds is the indicator refresh period in virtual
	// seconds (default 10, the paper's rate).
	ProgressUpdateSeconds float64
	// SpeedWindowSeconds is the speed-monitoring window T (default 10).
	SpeedWindowSeconds float64
	// SpeedDecayAlpha, if in (0,1], enables the decaying-average speed
	// smoother (the paper's Section 4.6 suggested extension).
	SpeedDecayAlpha float64
	// PerSegmentSpeed enables the paper's other Section 4.6 suggestion:
	// convert remaining U to time with per-segment predicted rates (from
	// each segment's disk-vs-memory byte mix) scaled by the observed
	// load, instead of one global speed.
	PerSegmentSpeed bool
	// Metrics enables the engine-wide metrics registry (DB.Metrics,
	// DB.MetricsText, DB.MetricsJSON): buffer-pool, disk, executor, and
	// indicator-refinement instruments. Off by default; the disabled path
	// costs only nil checks in operator hot loops (the paper's <1%
	// statistics-collection overhead budget).
	Metrics bool
	// Trace enables per-query tracing: every Exec fills Result.Trace with
	// a query → segment → operator span tree carrying virtual times, U
	// consumed, and estimated-vs-actual cardinalities. Off by default.
	// EXPLAIN ANALYZE collects a trace regardless of this flag.
	Trace bool
	// TraceSink, when non-nil, receives a JSONL structured event log: one
	// line per progress refresh and per segment completion.
	TraceSink io.Writer
	// FaultSpec, when non-empty, installs a storage fault injector at
	// Open for chaos testing — deterministic seedable I/O errors, added
	// latency, and scheduled panics, per file class. See SetFaultSpec
	// for the grammar and semantics. Open panics if the spec does not
	// parse; SetFaultSpec is the error-returning form.
	FaultSpec string
	// QueryTimeoutSeconds, when > 0, bounds every Exec* call by a
	// wall-clock deadline. A query that exceeds it unwinds at the
	// executor's next safe point, releases its resources, and returns
	// an error satisfying errors.Is(err, context.DeadlineExceeded).
	QueryTimeoutSeconds float64
}

// DB is one engine instance: simulated storage, a catalog, and a virtual
// clock.
//
// Concurrency contract: the query paths — Exec, ExecContext, ExecDiscard,
// ExecDiscardContext, EstimateCostU, Explain, CheckLeaks, Now, and the
// metrics accessors — are safe to call from multiple goroutines; each
// query runs on its own worker clock and the storage layers are latched.
// Setup and maintenance — CreateTable, Insert, Analyze, CreateIndex,
// DropTable, LoadPaperWorkload*, SetInterference, SetFaultSpec,
// ColdRestart, ExecGroup, and the txn API — are single-threaded and must
// not overlap each other or running queries, matching the paper's
// load-then-query methodology.
type DB struct {
	cfg   Config
	group *vclock.Group
	clock *vclock.Clock // base worker clock: DDL, loads, single-threaded paths
	cat   *catalog.Catalog
	inj   *faultinject.Injector

	// Observability (all fields are inert zero values when disabled).
	reg     *obs.Registry
	execMet exec.Metrics
	refine  core.RefinementMetrics
	events  *obs.EventWriter
	queries *obs.Counter
}

// Open creates an engine.
func Open(cfg Config) *DB {
	if cfg.BufferPoolPages <= 0 {
		cfg.BufferPoolPages = 2048
	}
	if cfg.WorkMemPages <= 0 {
		cfg.WorkMemPages = 2048
	}
	if cfg.ProgressUpdateSeconds <= 0 {
		cfg.ProgressUpdateSeconds = 10
	}
	costs := vclock.DefaultCosts()
	if cfg.SeqPageCost > 0 {
		costs.SeqPage = cfg.SeqPageCost
	}
	if cfg.RandPageCost > 0 {
		costs.RandPage = cfg.RandPageCost
	}
	if cfg.CPUTupleCost > 0 {
		costs.CPUTuple = cfg.CPUTupleCost
	}
	group := vclock.NewGroup(costs)
	clock := group.Worker()
	disk := storage.NewDisk(clock)
	pool := storage.NewBufferPool(disk, cfg.BufferPoolPages)
	db := &DB{cfg: cfg, group: group, clock: clock, cat: catalog.New(pool)}
	db.events = obs.NewEventWriter(cfg.TraceSink)
	if cfg.Metrics {
		db.wireMetrics(pool, disk)
	}
	if cfg.FaultSpec != "" {
		if err := db.SetFaultSpec(cfg.FaultSpec); err != nil {
			//lint:ignore errwrap sanctioned: New is Must-style by contract; SetFaultSpec is the error-returning path
			panic(err) // Must-style: use SetFaultSpec to handle the error
		}
	}
	return db
}

// Now returns the current virtual time in seconds: the max-merge of all
// worker clocks, monotone even while queries run concurrently.
func (db *DB) Now() float64 {
	db.clock.Sync()
	return db.group.Now()
}

// SetInterference installs load intervals on the virtual clock: between
// start and end (virtual seconds), I/O or CPU work is slowed by factor.
// kind is "io" or "cpu". It models the paper's concurrent file copy and
// CPU-intensive program.
func (db *DB) SetInterference(kind string, start, end, factor float64) error {
	iv := vclock.Interval{Start: start, End: end}
	switch kind {
	case "io":
		iv.IOFactor = factor
	case "cpu":
		iv.CPUFactor = factor
	default:
		return fmt.Errorf("progressdb: interference kind must be \"io\" or \"cpu\", got %q", kind)
	}
	p, err := vclock.NewLoadProfile(iv)
	if err != nil {
		return err
	}
	db.group.SetProfile(p)
	db.clock.SetProfile(p)
	return nil
}

// ClearInterference removes any load profile.
func (db *DB) ClearInterference() {
	db.group.SetProfile(nil)
	db.clock.SetProfile(nil)
}

// CreateTable creates an empty table.
func (db *DB) CreateTable(name string, cols ...Column) error {
	if len(cols) == 0 {
		return fmt.Errorf("progressdb: table %q needs at least one column", name)
	}
	sch := &tuple.Schema{}
	for _, c := range cols {
		var t tuple.Type
		switch c.Type {
		case Int:
			t = tuple.Int
		case Float:
			t = tuple.Float
		case Text:
			t = tuple.String
		default:
			return fmt.Errorf("progressdb: unknown column type %d", c.Type)
		}
		sch.Cols = append(sch.Cols, tuple.Column{Name: c.Name, Type: t})
	}
	_, err := db.cat.CreateTable(name, sch)
	return err
}

// MustCreateTable is CreateTable that panics on error.
func (db *DB) MustCreateTable(name string, cols ...Column) {
	if err := db.CreateTable(name, cols...); err != nil {
		//lint:ignore errwrap sanctioned: Must-style helper panics by documented contract
		panic(err)
	}
}

// Insert appends one row. Values must be int64, float64, or string,
// matching the schema.
func (db *DB) Insert(table string, values ...interface{}) error {
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	row := make(tuple.Tuple, 0, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case int64:
			row = append(row, tuple.NewInt(x))
		case int:
			row = append(row, tuple.NewInt(int64(x)))
		case float64:
			row = append(row, tuple.NewFloat(x))
		case string:
			row = append(row, tuple.NewString(x))
		default:
			return fmt.Errorf("progressdb: value %d has unsupported type %T", i, v)
		}
	}
	return db.cat.Insert(t, row)
}

// MustInsert is Insert that panics on error.
func (db *DB) MustInsert(table string, values ...interface{}) {
	if err := db.Insert(table, values...); err != nil {
		//lint:ignore errwrap sanctioned: Must-style helper panics by documented contract
		panic(err)
	}
}

// FlushTable makes all inserted rows of a table readable. Called
// automatically by Analyze.
func (db *DB) FlushTable(table string) error {
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	return t.Heap.Sync()
}

// CreateIndex builds a B+-tree index over an Int column.
func (db *DB) CreateIndex(table, column string) error {
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	if err := t.Heap.Sync(); err != nil {
		return err
	}
	_, err = db.cat.CreateIndex(t, column)
	return err
}

// Analyze flushes all tables and collects optimizer statistics — the
// paper runs the statistics collector before its experiments.
func (db *DB) Analyze() error {
	for _, t := range db.cat.Tables() {
		if err := t.Heap.Sync(); err != nil {
			return err
		}
	}
	err := db.cat.AnalyzeAll()
	// Publish the load/analyze I/O into the clock group so the first
	// query's worker clock starts after it.
	db.clock.Sync()
	return err
}

// ColdRestart empties the buffer pool (the paper restarts the machine
// before each test for a cold cache).
func (db *DB) ColdRestart() error {
	if err := db.cat.Pool().Flush(); err != nil {
		return err
	}
	db.cat.Pool().Clear()
	db.clock.Sync()
	return nil
}

// LoadPaperWorkload generates the paper's Table 1 data set (customer,
// orders, lineitem, customer_subset1/2) at the given scale (1.0 = the
// paper's sizes; 0.05 is a laptop-friendly default when scale <= 0) and
// analyzes it. Set correlated for the Q3 experiment's orders variant.
func (db *DB) LoadPaperWorkload(scale float64, correlated bool) error {
	_, err := workload.Load(db.cat, workload.Config{Scale: scale, CorrelatedOrders: correlated})
	return err
}

// LoadPaperWorkloadPartition loads only hash partition `partition` of
// `of` shards of the paper data set (see workload.PartitionKeys for each
// table's partition key). Generation is deterministic and ownership-
// independent, so the union of the `of` partitions equals the full
// LoadPaperWorkload data set exactly. Fleet shards bootstrap through
// this.
func (db *DB) LoadPaperWorkloadPartition(scale float64, correlated bool, partition, of int) error {
	_, err := workload.Load(db.cat, workload.Config{
		Scale: scale, CorrelatedOrders: correlated,
		Partition: &workload.PartitionSpec{Index: partition, Count: of},
	})
	return err
}

// LoadPartitionFiles bootstraps this engine from datagen -partitions
// output: every <table>.p<partition>.tbl file in dir is created, filled,
// and analyzed. The returned count is the partition count recorded in the
// file headers.
func (db *DB) LoadPartitionFiles(dir string, partition int) (int, error) {
	return workload.LoadPartitionFiles(db.cat, dir, partition)
}

// PaperQuery returns the paper's query Q1–Q5, verbatim.
func PaperQuery(n int) (string, error) { return workload.QuerySQL(n) }

// EstimateCostU compiles sql and returns the optimizer's initial total
// query cost estimate in U (pages) — the same figure the progress
// indicator starts from before any refinement. Admission controllers use
// it to price a query before running it.
//
// The estimate is a pure read of the catalog and statistics: it charges
// nothing to the virtual clock and touches no storage, so it is safe to
// call concurrently with a running query on the same DB. It is NOT safe
// concurrently with DDL, inserts, or Analyze (like every other DB call).
func (db *DB) EstimateCostU(sql string) (float64, error) {
	p, err := db.plan(sql)
	if err != nil {
		return 0, err
	}
	d := segment.Decompose(p, db.cfg.WorkMemPages)
	return d.TotalInitCost() / storage.PageSize, nil
}

// Idle advances the virtual clock by d virtual seconds without charging
// any work — deterministic waiting. Retry backoff (the bufferpool's I/O
// retries, the fleet coordinator's subquery retries) is charged through
// this so backoff time exists on the clock and fault schedules replay
// identically across runs.
func (db *DB) Idle(d float64) {
	db.clock.Idle(d)
	db.clock.Sync()
}

// Explain compiles sql and returns the physical plan and its segment
// decomposition (segments, inputs, dominant inputs, initial costs).
func (db *DB) Explain(sql string) (string, error) {
	p, err := db.plan(sql)
	if err != nil {
		return "", err
	}
	d := segment.Decompose(p, db.cfg.WorkMemPages)
	return plan.Format(p) + "\n" + d.String(), nil
}

func (db *DB) plan(sql string) (plan.Node, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.planSelect(stmt)
}

// planSelect runs the optimizer on an already-parsed SELECT.
func (db *DB) planSelect(stmt *sqlparser.SelectStmt) (plan.Node, error) {
	return optimizer.Plan(db.cat, stmt, optimizer.Options{WorkMemPages: db.cfg.WorkMemPages})
}

// Report is one progress-indicator refresh, the paper's Figure 2 display.
type Report struct {
	// ElapsedSeconds since the query started (virtual time).
	ElapsedSeconds float64
	// EstimatedCostU is the refined total query cost in U (pages).
	EstimatedCostU float64
	// DoneU is work completed in U.
	DoneU float64
	// Percent completed, 0–100.
	Percent float64
	// SpeedU is the monitored execution speed in U/second.
	SpeedU float64
	// RemainingSeconds is the estimated remaining execution time.
	RemainingSeconds float64
	// CurrentSegment is the executing segment's index (-1 when done).
	CurrentSegment int
	// SegmentsDone counts completed pipelined segments.
	SegmentsDone int
	// StepPercent is the trivial step-counting baseline (completed
	// segments over total segments).
	StepPercent float64
	// CurrentP is the executing segment's dominant-input fraction p, and
	// CurrentE1/CurrentE the Section 4.5 blend's inputs E1 and output E
	// (rows); all zero when no segment is mid-execution. These are the
	// per-segment estimator internals surfaced on the progressd wire.
	CurrentP, CurrentE1, CurrentE float64
	// Finished marks the final report.
	Finished bool
}

func toReport(s core.Snapshot) Report {
	return Report{
		ElapsedSeconds:   s.Elapsed,
		EstimatedCostU:   s.EstTotalU,
		DoneU:            s.DoneU,
		Percent:          s.Percent,
		SpeedU:           s.SpeedU,
		RemainingSeconds: s.RemainingSeconds,
		CurrentSegment:   s.CurrentSegment,
		SegmentsDone:     s.SegmentsDone,
		StepPercent:      s.StepPercent,
		CurrentP:         s.CurrentP,
		CurrentE1:        s.CurrentE1,
		CurrentE:         s.CurrentE,
		Finished:         s.Finished,
	}
}

// SegmentStats is one pipelined segment's post-execution summary: the
// estimated-versus-actual figures the indicator accumulated while the
// segment ran. It is the paper's Section 6 "where did the time go"
// ledger, exposed per query so serving layers can retain it after the
// query finishes.
type SegmentStats struct {
	// Index is the segment's execution-order position.
	Index int
	// Root labels the segment's top operator.
	Root string
	// EstCostU and ActualCostU compare the optimizer's initial segment
	// cost with the work actually done, in U (pages).
	EstCostU, ActualCostU float64
	// EstRows is the optimizer's output-cardinality estimate E1;
	// ActualRows the observed output (-1 for the final segment, whose
	// output is the result set and is not U-accounted).
	EstRows, ActualRows float64
	// StartSeconds and EndSeconds bound the segment's active period in
	// virtual time (both zero if it never started).
	StartSeconds, EndSeconds float64
	// Done reports whether the segment ran to completion.
	Done bool
}

// Result is a completed query.
type Result struct {
	// Columns are the output column names.
	Columns []string
	// Rows holds the result values (int64, float64, or string).
	Rows [][]interface{}
	// VirtualSeconds is the query's execution time on the virtual clock.
	VirtualSeconds float64
	// History is every progress report taken during execution.
	History []Report
	// Segments is the per-segment estimated-vs-actual ledger, always
	// filled on successful execution.
	Segments []SegmentStats
	// Trace is the per-query span tree (query → segment → operator),
	// filled when Config.Trace is set, Config.TraceSink is non-nil, or
	// the query ran under ExecAnalyze / ExplainAnalyze; nil otherwise.
	Trace *obs.Trace
}

// RowCount returns the number of result rows.
func (r *Result) RowCount() int { return len(r.Rows) }

// Exec runs a query, invoking onProgress (if non-nil) at every indicator
// refresh, and returns the full result.
func (db *DB) Exec(sql string, onProgress func(Report)) (*Result, error) {
	return db.exec(context.Background(), sql, onProgress, true)
}

// ExecContext is Exec with cancellation: when ctx is canceled the
// executor unwinds at its next safe point (a bounded number of tuples
// away), the pipeline's operators release their resources through the
// normal error path, and the returned error satisfies
// errors.Is(err, context.Canceled) (or DeadlineExceeded). The engine
// remains usable for subsequent queries.
func (db *DB) ExecContext(ctx context.Context, sql string, onProgress func(Report)) (*Result, error) {
	return db.exec(ctx, sql, onProgress, true)
}

// ExecDiscard runs a query without materializing result rows (useful for
// large results and benchmarks); Result.Rows is nil but RowsDiscarded is
// reported via VirtualSeconds/History as usual.
func (db *DB) ExecDiscard(sql string, onProgress func(Report)) (*Result, error) {
	return db.exec(context.Background(), sql, onProgress, false)
}

// ExecDiscardContext is ExecDiscard with cancellation (see ExecContext).
func (db *DB) ExecDiscardContext(ctx context.Context, sql string, onProgress func(Report)) (*Result, error) {
	return db.exec(ctx, sql, onProgress, false)
}

func (db *DB) exec(ctx context.Context, sql string, onProgress func(Report), keepRows bool) (*Result, error) {
	p, err := db.plan(sql)
	if err != nil {
		return nil, err
	}
	ctx, cancel := db.queryCtx(ctx)
	defer cancel()
	out, err := db.run(ctx, p, sql, onProgress, keepRows, db.traceEnabled())
	if err != nil {
		return nil, err
	}
	return out.res, nil
}

// ExecAnalyze runs a query and returns, alongside the result, an
// EXPLAIN ANALYZE-style per-segment table comparing the optimizer's
// initial estimates with what actually happened and where the (virtual)
// time went — the paper's Section 6 "performance tuning" use of the
// progress indicator's history. For the per-operator annotated plan
// tree, use ExplainAnalyze.
func (db *DB) ExecAnalyze(sql string) (*Result, string, error) {
	p, err := db.plan(sql)
	if err != nil {
		return nil, "", err
	}
	ctx, cancel := db.queryCtx(context.Background())
	defer cancel()
	out, err := db.run(ctx, p, sql, nil, false, true)
	if err != nil {
		return nil, "", err
	}
	return out.res, core.FormatSegmentReports(out.ind.SegmentReports()), nil
}

// FormatReport renders a report as the paper's Figure 2 progress box.
func FormatReport(name string, r Report) string {
	return core.Format(name, core.Snapshot{
		Elapsed:          r.ElapsedSeconds,
		EstTotalU:        r.EstimatedCostU,
		Percent:          r.Percent,
		SpeedU:           r.SpeedU,
		RemainingSeconds: r.RemainingSeconds,
	})
}

package progressdb

import (
	"errors"
	"strings"
	"testing"
)

func groupDB(t *testing.T) *DB {
	t.Helper()
	// A small buffer pool keeps scans I/O-bound even when queries touch
	// the same table, so concurrent queries genuinely contend.
	db := Open(Config{
		ProgressUpdateSeconds: 0.5,
		SpeedWindowSeconds:    1,
		SeqPageCost:           0.01,
		RandPageCost:          0.08,
		BufferPoolPages:       64,
	})
	db.MustCreateTable("big", Col("k", Int), Col("pad", Text))
	pad := strings.Repeat("x", 100)
	for i := 0; i < 20000; i++ {
		db.MustInsert("big", int64(i), pad)
	}
	// A second identical table: scans of big and big2 compete for the
	// small pool (same-table scans would synchronize on shared pages).
	db.MustCreateTable("big2", Col("k", Int), Col("pad", Text))
	for i := 0; i < 20000; i++ {
		db.MustInsert("big2", int64(i), pad)
	}
	db.MustCreateTable("small", Col("k", Int), Col("pad", Text))
	for i := 0; i < 5000; i++ {
		db.MustInsert("small", int64(i), pad)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	if err := db.ColdRestart(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExecGroupBasics(t *testing.T) {
	db := groupDB(t)
	results, err := db.ExecGroup([]GroupQuery{
		{Name: "q1", SQL: "select * from big where k < 100", KeepRows: true},
		{Name: "q2", SQL: "select * from small where k < 10", KeepRows: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results: %d", len(results))
	}
	if results[0].RowCount() != 100 || results[1].RowCount() != 10 {
		t.Fatalf("rows: %d %d", results[0].RowCount(), results[1].RowCount())
	}
}

// Concurrent queries share the clock, so each runs longer than it would
// alone — genuine contention, no synthetic interference.
func TestExecGroupContention(t *testing.T) {
	solo := groupDB(t)
	soloRes, err := solo.ExecGroup([]GroupQuery{{Name: "alone", SQL: "select * from big"}})
	if err != nil {
		t.Fatal(err)
	}
	soloDur := soloRes[0].VirtualSeconds

	db := groupDB(t)
	results, err := db.ExecGroup([]GroupQuery{
		{Name: "a", SQL: "select * from big"},
		{Name: "b", SQL: "select * from big2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.VirtualSeconds < soloDur*1.5 {
			t.Fatalf("query %d: concurrent run %.1fs should be much slower than solo %.1fs",
				i, r.VirtualSeconds, soloDur)
		}
	}
}

func TestExecGroupDeterministic(t *testing.T) {
	run := func() []float64 {
		db := groupDB(t)
		results, err := db.ExecGroup([]GroupQuery{
			{Name: "a", SQL: "select * from big"},
			{Name: "b", SQL: "select * from small"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return []float64{results[0].VirtualSeconds, results[1].VirtualSeconds}
	}
	d1, d2 := run(), run()
	if d1[0] != d2[0] || d1[1] != d2[1] {
		t.Fatalf("nondeterministic group execution: %v vs %v", d1, d2)
	}
}

// A query arriving mid-run slows the first query down from its arrival
// point; the first query's indicator notices.
func TestExecGroupStaggeredArrival(t *testing.T) {
	db := groupDB(t)
	var aSpeeds []float64
	var aTimes []float64
	results, err := db.ExecGroup([]GroupQuery{
		{Name: "a", SQL: "select * from big", OnProgress: func(r Report) {
			aTimes = append(aTimes, r.ElapsedSeconds)
			aSpeeds = append(aSpeeds, r.SpeedU)
		}},
		{Name: "late", SQL: "select * from big2", StartAt: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The late query started at +1.5s.
	if results[1].VirtualSeconds <= 0 {
		t.Fatal("late query did not run")
	}
	// a's speed before t=8 should exceed its speed after the arrival.
	var before, after []float64
	for i, ts := range aTimes {
		if aSpeeds[i] <= 0 {
			continue
		}
		if ts > 0.4 && ts <= 1.5 {
			before = append(before, aSpeeds[i])
		}
		if ts > 2.5 && ts < results[0].VirtualSeconds-0.5 {
			after = append(after, aSpeeds[i])
		}
	}
	if len(before) == 0 || len(after) == 0 {
		t.Skipf("not enough samples: before=%d after=%d", len(before), len(after))
	}
	if meanF(after) > meanF(before)*0.75 {
		t.Fatalf("arrival of a second query should slow the first: before %.1f after %.1f",
			meanF(before), meanF(after))
	}
}

func meanF(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// One member's failure must not take down its neighbors: the healthy
// query completes with a result, and the error is a *GroupError aligned
// with the inputs.
func TestExecGroupPartialFailure(t *testing.T) {
	db := groupDB(t)
	results, err := db.ExecGroup([]GroupQuery{
		{Name: "ok", SQL: "select * from small", KeepRows: true},
		{Name: "bad", SQL: "select * from nosuchtable"},
	})
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v", err)
	}
	var ge *GroupError
	if !errors.As(err, &ge) {
		t.Fatalf("err = %T, want *GroupError", err)
	}
	if len(ge.Errs) != 2 || ge.Errs[0] != nil || ge.Errs[1] == nil {
		t.Fatalf("Errs = %v", ge.Errs)
	}
	if results[0] == nil || results[0].RowCount() != 5000 {
		t.Fatalf("healthy member should still complete: %+v", results[0])
	}
	if results[1] != nil {
		t.Fatal("failed member must have a nil result slot")
	}
}

func TestExecGroupEmpty(t *testing.T) {
	db := groupDB(t)
	results, err := db.ExecGroup(nil)
	if err != nil || results != nil {
		t.Fatalf("empty group: %v %v", results, err)
	}
}

func TestExecGroupManyQueries(t *testing.T) {
	db := groupDB(t)
	var qs []GroupQuery
	for i := 0; i < 5; i++ {
		qs = append(qs, GroupQuery{
			Name: string(rune('a' + i)),
			SQL:  "select * from small where k < 1000",
		})
	}
	results, err := db.ExecGroup(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if len(r.History) == 0 {
			t.Fatalf("query %d has no progress history", i)
		}
		final := r.History[len(r.History)-1]
		if !final.Finished || final.Percent != 100 {
			t.Fatalf("query %d final: %+v", i, final)
		}
	}
}

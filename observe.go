package progressdb

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"strings"

	"progressdb/internal/core"
	"progressdb/internal/exec"
	"progressdb/internal/obs"
	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/sqlparser"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

// This file is the engine's observability surface: the metrics registry
// wiring across storage/exec/indicator, per-query trace assembly, and
// EXPLAIN ANALYZE. Everything here is disabled by default and nil-safe
// when off — the paper budgets statistics collection at under 1% of
// query execution time, and the zero-value instruments keep the disabled
// hot path to bare nil checks.

// wireMetrics creates the registry and installs instruments in every
// engine layer.
func (db *DB) wireMetrics(pool *storage.BufferPool, disk *storage.Disk) {
	reg := obs.NewRegistry()
	db.reg = reg
	pool.SetMetrics(storage.PoolMetrics{
		Hits:            reg.Counter("bufferpool_hits_total", "page lookups served from the buffer pool"),
		Misses:          reg.Counter("bufferpool_misses_total", "page lookups read through to disk"),
		Evictions:       reg.Counter("bufferpool_evictions_total", "frames displaced by LRU"),
		DirtyWritebacks: reg.Counter("bufferpool_dirty_writebacks_total", "dirty pages written back on eviction or flush"),
		IORetries:       reg.Counter("storage_io_retries_total", "physical page accesses retried after a transient fault"),
		IORetryGiveups:  reg.Counter("storage_io_retry_giveups_total", "page accesses that failed after exhausting the retry budget"),
	})
	disk.SetMetrics(storage.DiskMetrics{
		SeqReads:   reg.Counter("disk_seq_reads_total", "sequential physical page reads"),
		RandReads:  reg.Counter("disk_rand_reads_total", "random physical page reads"),
		SeqWrites:  reg.Counter("disk_seq_writes_total", "sequential physical page writes"),
		RandWrites: reg.Counter("disk_rand_writes_total", "random physical page writes"),
	})
	db.execMet = exec.NewMetrics(reg)
	db.refine = core.NewRefinementMetrics(reg)
	db.queries = reg.Counter("engine_queries_total", "queries executed to completion")
}

// MetricsEnabled reports whether the engine-wide registry is active.
func (db *DB) MetricsEnabled() bool { return db.reg != nil }

// Registry exposes the engine's metrics registry so embedding layers
// (e.g. internal/server) can register their own instruments alongside
// the engine's and serve one unified /metrics page. Nil when
// Config.Metrics is off.
func (db *DB) Registry() *obs.Registry { return db.reg }

// Metrics returns a point-in-time snapshot of every engine-wide
// instrument, sorted by series ID. Nil when Config.Metrics is off.
func (db *DB) Metrics() []obs.Sample {
	db.syncGauges()
	return db.reg.Snapshot()
}

// MetricsText renders the instruments in the Prometheus text exposition
// format. Empty when Config.Metrics is off.
func (db *DB) MetricsText() string {
	db.syncGauges()
	return db.reg.PrometheusText()
}

// MetricsJSON renders the snapshot as JSON.
func (db *DB) MetricsJSON() ([]byte, error) {
	db.syncGauges()
	return db.reg.JSON()
}

// syncGauges refreshes the virtual-clock gauges (time and per-kind work
// units) so snapshots always carry current values.
func (db *DB) syncGauges() {
	if db.reg == nil {
		return
	}
	// Read the clock group, not a worker clock: gauges may be scraped
	// while queries run, and the group side is concurrency-safe.
	db.reg.Gauge("vclock_seconds", "current virtual time").Set(db.group.Now())
	for _, k := range []vclock.WorkKind{vclock.SeqIO, vclock.RandIO, vclock.CPU} {
		db.reg.LabeledGauge("vclock_units", "kind", k.String(), "work units charged, by kind").
			Set(db.group.UnitsOf(k))
	}
	db.reg.Gauge("storage_temp_files_open", "live temp/spill files on the simulated disk").
		Set(float64(len(db.cat.Pool().Disk().OpenFilesOfClass(storage.ClassTemp))))
}

func (db *DB) traceEnabled() bool { return db.cfg.Trace || db.cfg.TraceSink != nil }

// runOut bundles one execution's artifacts for the callers that need
// more than the Result.
type runOut struct {
	res  *Result
	dec  *segment.Decomposition
	ind  *core.Indicator
	coll *exec.Collector
}

// run executes an already-planned query with full observability wiring:
// the indicator gets the refinement instruments and event sink, the
// executor gets engine metrics and (optionally) a per-operator collector,
// and the trace is assembled afterwards. ctx cancels execution at the
// executor's safe points.
//
// run is also the engine's panic boundary and cleanup backstop: a panic
// anywhere in decomposition or execution (including injected faults) is
// converted into a typed *exec.InternalError that fails only this
// query, and on any failure the query's tracked temp files are
// reclaimed so the engine stays leak-free and reusable.
func (db *DB) run(ctx context.Context, p plan.Node, name string, onProgress func(Report), keepRows, collect bool) (out *runOut, err error) {
	// Each query executes on its own worker clock drawn from the engine's
	// clock group: charges advance it independently of concurrent
	// queries, and it max-merges into the group at segment boundaries,
	// report snapshots, and query end. Publish the base clock first so
	// the worker starts no earlier than any completed setup work.
	db.clock.Sync()
	clk := db.group.Worker()
	var env *exec.Env
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, exec.NewInternalError(r, debug.Stack())
		}
		if err != nil && env != nil {
			env.ReleaseScans()
			env.ReclaimTemps()
		}
		clk.Sync()
	}()
	d := segment.Decompose(p, db.cfg.WorkMemPages)
	ind := core.New(clk, d, core.Options{
		UpdatePeriod:    db.cfg.ProgressUpdateSeconds,
		SpeedWindow:     db.cfg.SpeedWindowSeconds,
		DecayAlpha:      db.cfg.SpeedDecayAlpha,
		PerSegmentSpeed: db.cfg.PerSegmentSpeed,
		Refine:          db.refine,
		Events:          db.events,
	})
	if onProgress != nil {
		ind.Subscribe(func(s core.Snapshot) { onProgress(toReport(s)) })
	}
	ind.Start()
	defer ind.Stop()

	var coll *exec.Collector
	if collect {
		coll = exec.NewCollector(clk)
	}
	res := &Result{}
	for _, c := range p.Schema().Cols {
		res.Columns = append(res.Columns, c.Name)
	}
	env = &exec.Env{
		Pool:         db.cat.Pool(),
		Clock:        clk,
		WorkMemPages: db.cfg.WorkMemPages,
		Reporter:     ind,
		Decomp:       d,
		Met:          db.execMet,
		Collect:      coll,
	}
	if ctx != nil && ctx.Done() != nil {
		env.Ctx = ctx
	}
	start := clk.Now()
	var sink func(tuple.Tuple) error
	if keepRows {
		sink = func(t tuple.Tuple) error {
			res.Rows = append(res.Rows, tupleToRow(t))
			return nil
		}
	}
	if _, err := exec.Run(env, p, sink); err != nil {
		return nil, err
	}
	db.queries.Inc()
	res.VirtualSeconds = clk.Now() - start
	for _, s := range ind.Snapshots() {
		res.History = append(res.History, toReport(s))
	}
	for _, r := range ind.SegmentReports() {
		res.Segments = append(res.Segments, SegmentStats{
			Index:        r.ID,
			Root:         r.Root,
			EstCostU:     r.EstCostU,
			ActualCostU:  r.ActualCostU,
			EstRows:      r.EstOutRows,
			ActualRows:   r.ActualOutRows,
			StartSeconds: r.StartT,
			EndSeconds:   r.EndT,
			Done:         r.Done,
		})
	}
	if coll != nil {
		res.Trace = buildTrace(name, p, d, ind.SegmentReports(), coll, start, clk.Now())
	}
	return &runOut{res: res, dec: d, ind: ind, coll: coll}, nil
}

// tupleToRow converts an engine tuple to the public row representation.
func tupleToRow(t tuple.Tuple) []interface{} {
	row := make([]interface{}, len(t))
	for i, v := range t {
		switch v.Kind {
		case tuple.Int:
			row[i] = v.I
		case tuple.Float:
			row[i] = v.F
		default:
			row[i] = v.S
		}
	}
	return row
}

// buildTrace assembles the query → segment → operator span tree from the
// indicator's segment reports and the executor's per-operator actuals.
func buildTrace(name string, root plan.Node, d *segment.Decomposition,
	reports []core.SegmentReport, coll *exec.Collector, start, end float64) *obs.Trace {
	q := &obs.Span{Name: name, Kind: "query", Start: start, End: end}
	segSpans := make([]*obs.Span, len(reports))
	for i, r := range reports {
		s := &obs.Span{
			Name:  fmt.Sprintf("S%d %s", r.ID, r.Root),
			Kind:  "segment",
			Start: r.StartT,
			End:   r.EndT,
		}
		s.SetAttr("est_cost_u", r.EstCostU)
		s.SetAttr("actual_cost_u", r.ActualCostU)
		s.SetAttr("rows_est", r.EstOutRows)
		if r.ActualOutRows >= 0 {
			s.SetAttr("rows_actual", r.ActualOutRows)
		}
		segSpans[i] = s
		q.AddChild(s)
	}
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		sp := &obs.Span{Name: n.Label(), Kind: "operator"}
		sp.SetAttr("rows_est", n.Est().Card)
		if st := coll.Get(n); st != nil {
			sp.Start, sp.End = st.StartT, st.EndT
			sp.SetAttr("rows_actual", float64(st.Rows))
			sp.SetAttr("u", st.Bytes/storage.PageSize)
			sp.SetAttr("loops", float64(st.Loops))
			sp.Notes = append(sp.Notes, st.Notes...)
		}
		if seg, ok := d.NodeSeg[n]; ok && seg >= 0 && seg < len(segSpans) {
			segSpans[seg].AddChild(sp)
		} else {
			q.AddChild(sp)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(root)
	return &obs.Trace{Root: q}
}

// ExplainAnalyze parses sql (a SELECT, optionally prefixed with EXPLAIN
// ANALYZE), executes it to completion, and returns the result together
// with the annotated plan tree: per operator the optimizer's estimate,
// the actual row count, the estimate error factor, U consumed (pages of
// boundary bytes), virtual timing, and spill annotations — followed by
// the per-segment estimated-vs-actual table. Result.Trace is filled.
func (db *DB) ExplainAnalyze(sql string) (*Result, string, error) {
	st, err := sqlparser.ParseStatement(sql)
	if err != nil {
		return nil, "", err
	}
	p, err := db.planSelect(st.Select)
	if err != nil {
		return nil, "", err
	}
	ctx, cancel := db.queryCtx(context.Background())
	defer cancel()
	out, err := db.run(ctx, p, st.Select.String(), nil, true, true)
	if err != nil {
		return nil, "", err
	}
	text := formatAnalyzedPlan(p, out.dec, out.coll) + "\n" +
		core.FormatSegmentReports(out.ind.SegmentReports())
	return out.res, text, nil
}

// formatAnalyzedPlan renders the plan tree annotated with actuals, in the
// style of PostgreSQL's EXPLAIN ANALYZE.
func formatAnalyzedPlan(root plan.Node, d *segment.Decomposition, coll *exec.Collector) string {
	var b strings.Builder
	var walk func(n plan.Node, depth int)
	walk = func(n plan.Node, depth int) {
		pad := strings.Repeat("  ", depth)
		e := n.Est()
		fmt.Fprintf(&b, "%s%s  (est rows=%.0f width=%.0f)", pad, n.Label(), e.Card, e.Width)
		st := coll.Get(n)
		if st != nil {
			fmt.Fprintf(&b, " (actual rows=%d loops=%d U=%.1f time=%.1f..%.1fs",
				st.Rows, st.Loops, st.Bytes/storage.PageSize, st.StartT, st.EndT)
			if f := errFactor(e.Card, float64(st.Rows)); math.IsInf(f, 1) {
				b.WriteString(" err=xinf")
			} else {
				fmt.Fprintf(&b, " err=x%.1f", f)
			}
			b.WriteString(")")
		}
		if seg, ok := d.NodeSeg[n]; ok {
			fmt.Fprintf(&b, " [S%d]", seg)
		}
		b.WriteByte('\n')
		if st != nil {
			for _, note := range st.Notes {
				fmt.Fprintf(&b, "%s  note: %s\n", pad, note)
			}
		}
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}

// errFactor is the estimate error factor max(est/actual, actual/est)
// (the q-error): 1 for a perfect estimate, +Inf when exactly one side is
// zero.
func errFactor(est, actual float64) float64 {
	if est <= 0 && actual <= 0 {
		return 1
	}
	if est <= 0 || actual <= 0 {
		return math.Inf(1)
	}
	return math.Max(est/actual, actual/est)
}

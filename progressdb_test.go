package progressdb

import (
	"math"
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	db := Open(Config{})
	db.MustCreateTable("t",
		Col("k", Int), Col("x", Float), Col("s", Text))
	for i := 0; i < 100; i++ {
		db.MustInsert("t", int64(i), float64(i)*0.5, "row")
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("select k, s from t where k < 10", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount() != 10 {
		t.Fatalf("rows = %d", res.RowCount())
	}
	if len(res.Columns) != 2 || res.Columns[0] != "t.k" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Rows[0][0].(int64) != 0 || res.Rows[0][1].(string) != "row" {
		t.Fatalf("row 0 = %v", res.Rows[0])
	}
}

func TestFacadeErrors(t *testing.T) {
	db := Open(Config{})
	if err := db.CreateTable("empty"); err == nil {
		t.Fatal("empty table must fail")
	}
	db.MustCreateTable("t", Col("k", Int))
	if err := db.Insert("t", struct{}{}); err == nil {
		t.Fatal("unsupported value type must fail")
	}
	if err := db.Insert("missing", int64(1)); err == nil {
		t.Fatal("insert into missing table must fail")
	}
	if _, err := db.Exec("select * from missing", nil); err == nil {
		t.Fatal("query of missing table must fail")
	}
	if _, err := db.Exec("not sql", nil); err == nil {
		t.Fatal("bad sql must fail")
	}
	if err := db.SetInterference("magnets", 0, 10, 2); err == nil {
		t.Fatal("bad interference kind must fail")
	}
}

func TestFacadeIntConversion(t *testing.T) {
	db := Open(Config{})
	db.MustCreateTable("t", Col("k", Int))
	db.MustInsert("t", 42) // plain int converts
	db.Analyze()
	res, err := db.Exec("select * from t", nil)
	if err != nil || res.RowCount() != 1 || res.Rows[0][0].(int64) != 42 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestFacadeProgressCallbacks(t *testing.T) {
	db := Open(Config{ProgressUpdateSeconds: 0.5, SpeedWindowSeconds: 1, SeqPageCost: 0.01, RandPageCost: 0.08})
	db.MustCreateTable("big", Col("k", Int), Col("pad", Text))
	pad := strings.Repeat("x", 100)
	for i := 0; i < 20000; i++ {
		db.MustInsert("big", int64(i), pad)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	if err := db.ColdRestart(); err != nil {
		t.Fatal(err)
	}
	var reports []Report
	res, err := db.ExecDiscard("select * from big", func(r Report) { reports = append(reports, r) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != nil {
		t.Fatal("ExecDiscard must not materialize rows")
	}
	if len(reports) < 2 {
		t.Fatalf("got %d progress reports", len(reports))
	}
	final := reports[len(reports)-1]
	if !final.Finished || final.Percent != 100 {
		t.Fatalf("final report: %+v", final)
	}
	if len(res.History) != len(reports) {
		t.Fatalf("history %d != callbacks %d", len(res.History), len(reports))
	}
	if math.Abs(final.EstimatedCostU-final.DoneU) > 1e-6*final.DoneU {
		t.Fatalf("final estimate %g != done %g", final.EstimatedCostU, final.DoneU)
	}
}

func TestFacadeInterference(t *testing.T) {
	mk := func() *DB {
		db := Open(Config{ProgressUpdateSeconds: 0.5, SeqPageCost: 0.01, RandPageCost: 0.08})
		db.MustCreateTable("big", Col("k", Int), Col("pad", Text))
		pad := strings.Repeat("x", 100)
		for i := 0; i < 20000; i++ {
			db.MustInsert("big", int64(i), pad)
		}
		if err := db.Analyze(); err != nil {
			t.Fatal(err)
		}
		db.ColdRestart()
		return db
	}
	base, err := mk().ExecDiscard("select * from big", nil)
	if err != nil {
		t.Fatal(err)
	}
	db := mk()
	if err := db.SetInterference("io", db.Now(), db.Now()+1e6, 5); err != nil {
		t.Fatal(err)
	}
	slow, err := db.ExecDiscard("select * from big", nil)
	if err != nil {
		t.Fatal(err)
	}
	if slow.VirtualSeconds < base.VirtualSeconds*2 {
		t.Fatalf("5x I/O interference barely slowed the scan: %.2f vs %.2f",
			slow.VirtualSeconds, base.VirtualSeconds)
	}
	db.ClearInterference()
}

func TestFacadePaperWorkload(t *testing.T) {
	db := Open(Config{WorkMemPages: 16})
	if err := db.LoadPaperWorkload(0.002, false); err != nil {
		t.Fatal(err)
	}
	sql, err := PaperQuery(2)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := db.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "SeqScan lineitem") || !strings.Contains(ex, "[dominant]") {
		t.Fatalf("explain:\n%s", ex)
	}
	db.ColdRestart()
	res, err := db.ExecDiscard(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every lineitem row survives (absolute(partkey)>0 is always true):
	// |result| = |lineitem| = 300 customers × 10 × 4.
	if got := len(res.History); got == 0 {
		t.Fatal("no history")
	}
	if res.VirtualSeconds <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestFacadeIndexAndExplain(t *testing.T) {
	db := Open(Config{})
	db.MustCreateTable("t", Col("k", Int), Col("v", Text))
	for i := 0; i < 5000; i++ {
		db.MustInsert("t", int64(i), "v")
	}
	if err := db.CreateIndex("t", "k"); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	ex, err := db.Explain("select * from t where k = 7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "IndexScan") {
		t.Fatalf("expected index scan:\n%s", ex)
	}
	res, err := db.Exec("select * from t where k = 7", nil)
	if err != nil || res.RowCount() != 1 {
		t.Fatalf("index query: %d rows, %v", res.RowCount(), err)
	}
}

func TestFormatReport(t *testing.T) {
	s := FormatReport("Q2", Report{ElapsedSeconds: 61, RemainingSeconds: 30, Percent: 50, EstimatedCostU: 1000, SpeedU: 10})
	for _, want := range []string{"Q2", "1 min 1 sec", "1000 U", "10 U/Sec"} {
		if !strings.Contains(s, want) {
			t.Fatalf("FormatReport missing %q:\n%s", want, s)
		}
	}
}

func TestFacadeAggregationAndOrderBy(t *testing.T) {
	db := Open(Config{})
	db.MustCreateTable("sales", Col("region", Int), Col("amount", Float))
	for i := 0; i < 1000; i++ {
		db.MustInsert("sales", int64(i%4), float64(i))
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(
		"select region, count(*), sum(amount) from sales group by region order by region limit 3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount() != 3 {
		t.Fatalf("rows = %d", res.RowCount())
	}
	if res.Columns[1] != "count(*)" || res.Columns[2] != "sum(amount)" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Rows[0][0].(int64) != 0 || res.Rows[0][1].(int64) != 250 {
		t.Fatalf("row 0 = %v", res.Rows[0])
	}
	// region 0 amounts: 0,4,8,...,996 → sum = 4*(0+1+...+249) = 124500.
	if got := res.Rows[0][2].(float64); got != 124500 {
		t.Fatalf("sum = %g", got)
	}
	// Aggregates of missing columns fail cleanly.
	if _, err := db.Exec("select nosuch, count(*) from sales group by nosuch", nil); err == nil {
		t.Fatal("bad group by must fail")
	}
	if _, err := db.Exec("select amount, count(*) from sales group by region", nil); err == nil {
		t.Fatal("non-grouped plain column must fail")
	}
	if _, err := db.Exec("select region from sales order by amount", nil); err == nil {
		t.Fatal("order by column missing from select list must fail")
	}
}

func TestFacadeSubqueries(t *testing.T) {
	db := Open(Config{WorkMemPages: 64})
	if err := db.LoadPaperWorkload(0.002, false); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`
		select c.custkey from customer c
		where c.nationkey < 5 and exists (
			select * from orders o where o.custkey = c.custkey)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// All 300 customers have orders; nationkey<5 keeps 60.
	if res.RowCount() != 60 {
		t.Fatalf("rows = %d, want 60", res.RowCount())
	}
	ex, err := db.Explain("select custkey from customer where custkey not in (select custkey from orders)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "AntiHashSemiJoin") {
		t.Fatalf("explain:\n%s", ex)
	}
}

func TestFacadeExecAnalyze(t *testing.T) {
	db := Open(Config{WorkMemPages: 16})
	if err := db.LoadPaperWorkload(0.002, false); err != nil {
		t.Fatal(err)
	}
	sql, _ := PaperQuery(2)
	res, table, err := db.ExecAnalyze(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualSeconds <= 0 {
		t.Fatal("no time elapsed")
	}
	if !strings.Contains(table, "est U") || strings.Count(table, "\n") < 3 {
		t.Fatalf("analyze table:\n%s", table)
	}
	if _, _, err := db.ExecAnalyze("not sql"); err == nil {
		t.Fatal("bad sql must fail")
	}
}
